"""The run observer: one object that ties metrics, trace, progress, manifest.

The estimators expose three orthogonal observability knobs —
``manifest=PATH``, ``trace=PATH``, ``progress=True`` — and
:class:`RunObserver` is the plumbing behind all of them: the engine
(:func:`repro.stats.parallel.run_sharded` / ``parallel_map``) reports
run-start, per-shard completion, failures, and pool recycles to it; the
observer aggregates metrics, drives the progress line, records the
retry ledger, and on ``finish`` writes the run manifest and closes the
trace.

Observation is strictly read-only with respect to the statistics: the
observer sees shard *events*, never shard randomness, so enabling any
combination of knobs cannot change a single merged number (asserted by
the tests and tracked by ``benchmarks/bench_obs_overhead.py``).
``RunObserver.from_options`` returns ``None`` when every knob is off,
and every engine hook is behind an ``if observer is not None`` — the
un-observed hot path stays exactly as fast as before this layer
existed.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from contextlib import contextmanager
from typing import Callable, ContextManager, Iterator

from .manifest import build_run_record, summarise_result, write_manifest
from .metrics import MetricsRegistry, ShardEvent
from .progress import ProgressPrinter, ProgressSnapshot, estimate_eta
from .trace import Tracer

__all__ = ["RunObserver"]


@contextmanager
def _null_span() -> Iterator[None]:
    yield


class RunObserver:
    """Telemetry collector for one sharded (or legacy-serial) run.

    Lifecycle: the engine calls :meth:`run_started` once, then any mix
    of :meth:`shard_resumed` / :meth:`shard_finished` /
    :meth:`task_failed` / :meth:`pool_recycled` in completion order; the
    owning estimator calls :meth:`finish` with the merged result.  Final
    metrics and the manifest are assembled *in shard order* from the
    collected events, so two runs that executed the same shards produce
    the same snapshot shape regardless of scheduling.
    """

    def __init__(
        self,
        manifest: str | Path | None = None,
        trace: str | Path | Tracer | None = None,
        progress: bool | Callable[[ProgressSnapshot], None] = False,
        label: str = "",
    ):
        self.manifest_path = Path(manifest) if manifest is not None else None
        if isinstance(trace, Tracer):
            self.tracer: Tracer | None = trace
        elif trace is not None:
            self.tracer = Tracer(trace)
        else:
            self.tracer = None
        self._progress: Callable[[ProgressSnapshot], None] | None
        self._printer: ProgressPrinter | None = None
        if callable(progress):
            self._progress = progress
        elif progress:
            self._printer = ProgressPrinter()
            self._progress = self._printer
        else:
            self._progress = None
        self.label = label
        self.events: dict[int, ShardEvent] = {}
        self.retry_ledger: list[dict[str, object]] = []
        self._timeouts: dict[int, int] = {}
        self._recycles = 0
        self._cache = {"hits": 0, "misses": 0, "stored": 0, "evictions": 0}
        self._annotations: dict[str, tuple[float, str]] = {}
        self._journal_skipped = 0
        self._run: dict[str, object] | None = None
        self._started = time.perf_counter()
        self._active_shards = 0
        self._done_trials = 0
        self._executed_trials = 0
        self._executed_seconds: list[float] = []
        self._workers = 1

    @classmethod
    def from_options(
        cls,
        manifest: str | Path | None = None,
        trace: str | Path | Tracer | None = None,
        progress: bool | Callable[[ProgressSnapshot], None] = False,
        label: str = "",
    ) -> "RunObserver | None":
        """An observer if any knob is on, else ``None`` (the fast path)."""
        if manifest is None and trace is None and not progress:
            return None
        return cls(manifest=manifest, trace=trace, progress=progress, label=label)

    # ------------------------------------------------------------------
    # Engine-facing hooks
    # ------------------------------------------------------------------

    def run_started(
        self,
        *,
        trials: int,
        shards: int,
        seed: int | None,
        workers: int,
        active_shards: int | None = None,
        label: str | None = None,
        key: str | None = None,
        retries: int = 0,
        timeout: float | None = None,
        checkpoint: str | None = None,
        mode: str = "sharded",
    ) -> None:
        """Record the identity and configuration of the run."""
        if label:
            self.label = label
        self._run = {
            "trials": trials,
            "shards": shards,
            "seed": seed,
            "key": key,
            "workers": workers,
            "retries": retries,
            "timeout": timeout,
            "checkpoint": checkpoint,
            "mode": mode,
        }
        self._active_shards = shards if active_shards is None else active_shards
        self._workers = max(1, workers)
        self._started = time.perf_counter()

    def shard_resumed(self, shard: int, trials: int) -> None:
        """A shard satisfied from the checkpoint journal (not executed)."""
        self._record(ShardEvent(shard=shard, trials=trials, seconds=0.0,
                                attempts=0, resumed=True))

    def shard_cached(self, shard: int, trials: int) -> None:
        """A shard fetched from the content-addressed result cache."""
        self._record(ShardEvent(shard=shard, trials=trials, seconds=0.0,
                                attempts=0, resumed=True, cached=True))

    def cache_summary(self, *, hits: int, misses: int, stored: int,
                      evictions: int) -> None:
        """The engine's per-run cache tallies (reported once, post-run)."""
        self._cache["hits"] += hits
        self._cache["misses"] += misses
        self._cache["stored"] += stored
        self._cache["evictions"] += evictions

    def annotate(self, name: str, value: float, unit: str = "") -> None:
        """Record a caller-supplied gauge folded into :meth:`final_metrics`.

        Workload drivers that are not plain trial runs (e.g. litmus
        exploration over a test×model grid) use this to publish their
        own dimensions; the name should be registered in
        :data:`~repro.obs.metrics.METRICS_CATALOGUE` and documented in
        ``docs/OBSERVABILITY.md`` like any engine metric.
        """
        self._annotations[name] = (float(value), unit)

    def journal_skipped(self, lines: int) -> None:
        """Torn/undecodable journal lines dropped while loading a checkpoint."""
        self._journal_skipped += lines

    def shard_finished(self, event: ShardEvent) -> None:
        """A shard executed to completion (reported with worker telemetry)."""
        if event.shard in self._timeouts:
            event = replace(event, timeouts=self._timeouts[event.shard])
        self._record(event)

    def _record(self, event: ShardEvent) -> None:
        self.events[event.shard] = event
        self._done_trials += event.trials
        if not event.resumed:
            self._executed_trials += event.trials
            self._executed_seconds.append(event.seconds)
        if self._progress is not None:
            self._progress(self._snapshot())

    def task_failed(self, shard: int, attempt: int, kind: str, error: str) -> None:
        """A shard attempt failed (and will be retried — exhaustion raises)."""
        self.retry_ledger.append(
            {"shard": shard, "attempt": attempt, "kind": kind, "error": error}
        )
        if kind == "timeout":
            self._timeouts[shard] = self._timeouts.get(shard, 0) + 1

    def pool_recycled(self) -> None:
        """The process pool was torn down and rebuilt (timeout/broken pool)."""
        self._recycles += 1

    # ------------------------------------------------------------------
    # Caller-facing surface
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: object) -> ContextManager[None]:
        """A trace span when tracing is on; a no-op context otherwise."""
        if self.tracer is None:
            return _null_span()
        return self.tracer.span(name, **attributes)

    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._started

    def _snapshot(self) -> ProgressSnapshot:
        elapsed = self.elapsed_seconds()
        throughput = None
        if self._executed_trials and elapsed > 0.0:
            throughput = self._executed_trials / elapsed
        remaining = max(0, self._active_shards - len(self.events))
        return ProgressSnapshot(
            done_shards=len(self.events),
            total_shards=self._active_shards,
            done_trials=self._done_trials,
            total_trials=int(self._run["trials"]) if self._run else self._done_trials,
            elapsed_seconds=elapsed,
            trials_per_second=throughput,
            eta_seconds=estimate_eta(self._executed_seconds, remaining, self._workers),
        )

    def final_metrics(self) -> MetricsRegistry:
        """The run's metrics, aggregated deterministically in shard order."""
        registry = MetricsRegistry()
        run = self._run or {}
        elapsed = self.elapsed_seconds()
        executed = [event for _, event in sorted(self.events.items())
                    if not event.resumed]
        resumed = len(self.events) - len(executed)
        registry.gauge("run.trials_total", "trials").set(
            run.get("trials", self._done_trials)
        )
        registry.gauge("run.shards_total", "shards").set(len(self.events))
        registry.counter("run.shards_completed", "shards").inc(len(executed))
        registry.counter("run.shards_resumed", "shards").inc(resumed)
        registry.counter("run.shard_retries", "attempts").inc(len(self.retry_ledger))
        registry.counter("run.shard_timeouts", "events").inc(
            sum(1 for entry in self.retry_ledger if entry["kind"] == "timeout")
        )
        registry.counter("run.pool_recycles", "events").inc(self._recycles)
        registry.counter("run.cache_hits", "shards").inc(self._cache["hits"])
        registry.counter("run.cache_misses", "shards").inc(self._cache["misses"])
        registry.counter("run.cache_stored", "shards").inc(self._cache["stored"])
        registry.counter("run.cache_evictions", "entries").inc(
            self._cache["evictions"]
        )
        registry.counter("run.journal_skipped", "lines").inc(self._journal_skipped)
        seconds = registry.histogram("run.shard_seconds", "seconds")
        for event in executed:
            seconds.observe(event.seconds)
        registry.gauge("run.elapsed_seconds", "seconds").set(elapsed)
        if self._executed_trials and elapsed > 0.0:
            registry.gauge("run.trials_per_second", "trials/s").set(
                self._executed_trials / elapsed
            )
        else:
            registry.gauge("run.trials_per_second", "trials/s")
        for name, (value, unit) in sorted(self._annotations.items()):
            registry.gauge(name, unit).set(value)
        return registry

    def finish(self, result: object = None) -> dict[str, object] | None:
        """Close progress/trace and (if configured) write the manifest.

        Returns the run record appended to the manifest, or ``None``
        when no manifest was requested or no run was ever started.
        """
        if self._printer is not None:
            self._printer.close()
        if self.tracer is not None:
            self.tracer.close()
        if self._run is None:
            return None
        record = self.run_record(result)
        if self.manifest_path is not None:
            write_manifest(self.manifest_path, record)
        return record

    def run_record(self, result: object = None) -> dict[str, object]:
        """The manifest run record for the collected telemetry."""
        if self._run is None:
            raise RuntimeError("run_record before run_started")
        run = self._run
        ordered = [event for _, event in sorted(self.events.items())]
        executed = sum(1 for event in ordered if not event.resumed)
        resumed = len(ordered) - executed
        checkpoint = None
        if run["checkpoint"] is not None:
            checkpoint = {"path": str(run["checkpoint"]), "key": run["key"]}
        return build_run_record(
            label=self.label,
            mode=str(run["mode"]),
            plan={"trials": run["trials"], "shards": run["shards"],
                  "seed": run["seed"], "key": run["key"]},
            execution={
                "workers": int(run["workers"]),
                "retries": int(run["retries"]),
                "timeout": run["timeout"],
                "executed_shards": executed,
                "resumed_shards": resumed,
                "pool_recycles": self._recycles,
                "elapsed_seconds": self.elapsed_seconds(),
            },
            shards=[event.as_dict() for event in ordered],
            retry_ledger=sorted(self.retry_ledger,
                                key=lambda entry: (entry["shard"], entry["attempt"])),
            metrics=self.final_metrics().snapshot(),
            result=summarise_result(result),
            checkpoint=checkpoint,
        )
