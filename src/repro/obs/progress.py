"""Live progress reporting for sharded runs (the ``--progress`` line).

A progress sink receives one :class:`ProgressSnapshot` per completed (or
checkpoint-resumed) shard.  The default sink, :class:`ProgressPrinter`,
rewrites a single stderr line:

.. code-block:: text

   [repro] shards 5/16 · trials 93,750/300,000 · 45,678 trials/s · ETA 3.2s

The ETA model (derived in ``docs/MATH.md`` §11): ``plan_shards``
balances trial counts across shards to within one trial, so shard
durations are near-iid draws from one distribution and the best
predictor of a remaining shard's duration is a robust location estimate
of the completed ones — the trimmed mean
(:func:`repro.obs.metrics.trimmed_mean`).  With ``W`` workers draining
the remaining shards in parallel,

    ``ETA = remaining_shards x trimmed_mean(shard_seconds) / W``.

Resumed shards cost nothing and never enter the mean.  Progress output
goes to *stderr* so piping an estimator's stdout stays clean, and it is
pure observability: enabling it cannot change any estimate.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO

from .metrics import trimmed_mean

__all__ = ["ProgressSnapshot", "ProgressPrinter", "estimate_eta"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """The state of a run after one more shard finished."""

    done_shards: int
    total_shards: int
    done_trials: int
    total_trials: int
    elapsed_seconds: float
    trials_per_second: float | None  # executed trials over parent wall time
    eta_seconds: float | None  # None until one executed shard completed


def estimate_eta(
    shard_seconds: list[float],
    remaining_shards: int,
    workers: int = 1,
) -> float | None:
    """Expected seconds to finish ``remaining_shards`` (docs/MATH.md §11).

    ``shard_seconds`` holds the durations of the shards *executed* so
    far (resumed shards are free and must be excluded by the caller).
    Returns ``None`` when no executed shard has completed yet — there is
    nothing to extrapolate from.
    """
    if remaining_shards < 0:
        raise ValueError(f"remaining_shards must be non-negative, got {remaining_shards}")
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if not shard_seconds:
        return None
    return remaining_shards * trimmed_mean(shard_seconds) / workers


def _format_seconds(seconds: float) -> str:
    if seconds >= 90.0:
        minutes, rest = divmod(seconds, 60.0)
        return f"{int(minutes)}m{rest:02.0f}s"
    return f"{seconds:.1f}s"


def format_progress(snapshot: ProgressSnapshot) -> str:
    """Render one snapshot as the single-line progress string."""
    parts = [
        f"shards {snapshot.done_shards}/{snapshot.total_shards}",
        f"trials {snapshot.done_trials:,}/{snapshot.total_trials:,}",
    ]
    if snapshot.trials_per_second is not None:
        parts.append(f"{snapshot.trials_per_second:,.0f} trials/s")
    if snapshot.eta_seconds is not None:
        parts.append(f"ETA {_format_seconds(snapshot.eta_seconds)}")
    return "[repro] " + " · ".join(parts)


__all__.append("format_progress")


class ProgressPrinter:
    """The default progress sink: one self-overwriting stderr line.

    Each update rewrites the line with ``\\r`` (padded to blank the
    previous render); :meth:`close` prints the final state and a
    newline.  Any callable accepting a :class:`ProgressSnapshot` can
    replace it (``progress=my_sink``), which is what the tests do.
    """

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream if stream is not None else sys.stderr
        self._last_width = 0
        self._last: ProgressSnapshot | None = None

    def __call__(self, snapshot: ProgressSnapshot) -> None:
        self._last = snapshot
        line = format_progress(snapshot)
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        try:
            self._stream.write("\r" + line + padding)
            self._stream.flush()
        except (OSError, ValueError):  # closed/broken stream: drop progress
            pass

    def close(self) -> None:
        if self._last is None:
            return
        try:
            self._stream.write("\r" + format_progress(self._last) + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            pass
