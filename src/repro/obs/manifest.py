"""Run manifests: a durable, validated record of what a run actually did.

A finished estimate is one number; an *auditable* estimate needs the
story behind it — which plan drew the randomness, how long each shard
took, what failed and was retried, what was resumed from a checkpoint,
and what the merged result was.  The manifest is that story as JSON,
written next to the checkpoint journal by the ``manifest=`` keyword /
``--manifest`` CLI flag.

One manifest **file** holds one document with a ``runs`` list; each
sharded run appends one **run record**, so a multi-model command (the
``thm62`` table runs four estimators) or a re-run lands in the same file
and stays comparable — re-running a fixed-seed plan must reproduce the
``result`` block bit-identically while ``shards[*].seconds`` move.

Document schema (format 1; the annotated example lives in
``docs/OBSERVABILITY.md``):

.. code-block:: text

   {"kind": "repro/run-manifest", "format": 1, "runs": [RUN, ...]}

   RUN = {
     "label":            str   — experiment label (same salt as the checkpoint key)
     "library_version":  str
     "created_unix":     float — wall-clock write time
     "mode":             "sharded" | "serial-legacy"
     "plan":      {"trials": int, "shards": int, "seed": int|null, "key": str|null}
     "execution": {"workers": int, "retries": int, "timeout": float|null,
                   "executed_shards": int, "resumed_shards": int,
                   "pool_recycles": int, "elapsed_seconds": float}
     "shards":    [ShardEvent.as_dict() ... in shard order]
     "retry_ledger": [{"shard": int, "attempt": int, "kind": "error"|"timeout"|"pool",
                       "error": str} ... sorted by (shard, attempt)]
     "metrics":   MetricsRegistry.snapshot()
     "result":    summarise_result(...) | null
     "checkpoint": {"path": str, "key": str} | null
   }

:func:`validate_manifest` checks structure *and* internal consistency
(shard trials sum to the plan's budget, executed/resumed counts match
the shard list) and raises :class:`ManifestError` on drift — the
round-trip ``write -> validate -> load`` is a tested invariant.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_FORMAT",
    "ManifestError",
    "build_run_record",
    "summarise_result",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
]

MANIFEST_KIND = "repro/run-manifest"
MANIFEST_FORMAT = 1


class ManifestError(ValueError):
    """A manifest file or record violates the documented schema."""


def _library_version() -> str:
    # Imported lazily: repro.obs must stay importable mid-way through the
    # package's own import (the stats layer pulls it in).
    try:
        from repro import __version__
        return __version__
    except Exception:  # pragma: no cover - only during exotic partial imports
        return "unknown"


def summarise_result(result: Any) -> dict[str, object] | None:
    """A JSON-ready summary of a merged estimate (duck-typed).

    Recognises the library's result families by shape rather than by
    import (observability sits below every layer that defines them):
    Bernoulli (``successes``/``trials``), categorical and machine PMFs
    (``counts`` or ``final_values``), window measurements
    (``overlap_trials``), and plain dicts.  Anything else falls back to
    ``repr``.  The summary must be deterministic for a fixed plan — it
    is the field re-runs are compared on.
    """
    if result is None:
        return None
    summary: dict[str, object] = {"type": type(result).__name__}
    if isinstance(result, dict):
        summary["value"] = {str(key): value for key, value in sorted(result.items())}
        return summary
    if hasattr(result, "successes") and hasattr(result, "trials"):
        summary.update(
            successes=int(result.successes),
            trials=int(result.trials),
            estimate=result.successes / result.trials if result.trials else None,
        )
    elif hasattr(result, "counts") and hasattr(result, "trials"):
        summary.update(
            counts={str(key): int(value) for key, value in sorted(result.counts.items())},
            trials=int(result.trials),
        )
    elif hasattr(result, "final_values") and hasattr(result, "trials"):
        summary.update(
            final_values={str(key): int(value)
                          for key, value in sorted(result.final_values.items())},
            trials=int(result.trials),
            manifestations=int(result.manifestations),
        )
    elif hasattr(result, "overlap_trials") and hasattr(result, "trials"):
        summary.update(
            trials=int(result.trials),
            overlap_trials=int(result.overlap_trials),
            manifest_trials=int(result.manifest_trials),
            manifest_without_overlap=int(result.manifest_without_overlap),
        )
    else:
        summary["repr"] = repr(result)
    for attribute in ("confidence", "seed", "model", "threads"):
        if hasattr(result, attribute):
            value = getattr(result, attribute)
            if isinstance(value, (int, float, str)) or value is None:
                summary[attribute] = value
    return summary


def build_run_record(
    *,
    label: str,
    mode: str,
    plan: dict[str, object],
    execution: dict[str, object],
    shards: list[dict[str, object]],
    retry_ledger: list[dict[str, object]],
    metrics: dict[str, dict[str, object]],
    result: dict[str, object] | None,
    checkpoint: dict[str, object] | None,
) -> dict[str, object]:
    """Assemble one run record (the observer calls this; tests too)."""
    return {
        "label": label,
        "library_version": _library_version(),
        "created_unix": time.time(),
        "mode": mode,
        "plan": dict(plan),
        "execution": dict(execution),
        "shards": list(shards),
        "retry_ledger": list(retry_ledger),
        "metrics": dict(metrics),
        "result": result,
        "checkpoint": checkpoint,
    }


def write_manifest(path: str | Path, record: dict[str, object]) -> Path:
    """Append one run record to the manifest file at ``path``.

    Creates the document on first write; subsequent writes re-read,
    append to ``runs``, and replace the file atomically
    (write-to-temp + ``os.replace``), so a crash mid-write can never
    leave a torn manifest.  An existing file that is not a valid
    manifest raises :class:`ManifestError` rather than being clobbered.
    """
    target = Path(path)
    if target.exists():
        document = load_manifest(target)
    else:
        document = {"kind": MANIFEST_KIND, "format": MANIFEST_FORMAT, "runs": []}
    document["runs"].append(record)
    validate_manifest(document)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + f".tmp{os.getpid()}")
    scratch.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    os.replace(scratch, target)
    return target.resolve()


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read and validate a manifest file; returns the document."""
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ManifestError(f"cannot read manifest {target}: {error}") from error
    validate_manifest(document)
    return document


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


_RUN_KEYS = frozenset(
    ["label", "library_version", "created_unix", "mode", "plan", "execution",
     "shards", "retry_ledger", "metrics", "result", "checkpoint"]
)
_SHARD_KEYS = frozenset(
    ["shard", "trials", "seconds", "attempts", "timeouts", "resumed", "worker"]
)


def validate_manifest(document: Any) -> None:
    """Assert ``document`` obeys the format-1 schema; raise otherwise."""
    _require(isinstance(document, dict), "manifest document must be an object")
    _require(document.get("kind") == MANIFEST_KIND,
             f"manifest kind must be {MANIFEST_KIND!r}, got {document.get('kind')!r}")
    _require(document.get("format") == MANIFEST_FORMAT,
             f"unsupported manifest format {document.get('format')!r}")
    runs = document.get("runs")
    _require(isinstance(runs, list), "manifest 'runs' must be a list")
    for position, run in enumerate(runs):
        _validate_run(run, position)


def _validate_run(run: Any, position: int) -> None:
    where = f"runs[{position}]"
    _require(isinstance(run, dict), f"{where} must be an object")
    missing = _RUN_KEYS - run.keys()
    _require(not missing, f"{where} missing keys: {sorted(missing)}")
    _require(run["mode"] in ("sharded", "serial-legacy"),
             f"{where}.mode must be 'sharded' or 'serial-legacy'")

    plan = run["plan"]
    _require(isinstance(plan, dict), f"{where}.plan must be an object")
    for key in ("trials", "shards"):
        _require(isinstance(plan.get(key), int) and plan[key] >= 1,
                 f"{where}.plan.{key} must be a positive integer")
    _require(plan.get("seed") is None or isinstance(plan["seed"], int),
             f"{where}.plan.seed must be an integer or null")

    execution = run["execution"]
    _require(isinstance(execution, dict), f"{where}.execution must be an object")
    for key in ("workers", "executed_shards", "resumed_shards", "pool_recycles"):
        _require(isinstance(execution.get(key), int) and execution[key] >= 0,
                 f"{where}.execution.{key} must be a non-negative integer")

    shards = run["shards"]
    _require(isinstance(shards, list) and shards, f"{where}.shards must be a non-empty list")
    resumed = 0
    total_trials = 0
    previous = -1
    for entry in shards:
        _require(isinstance(entry, dict) and not (_SHARD_KEYS - entry.keys()),
                 f"{where}.shards entries must carry {sorted(_SHARD_KEYS)}")
        _require(isinstance(entry["shard"], int) and entry["shard"] > previous,
                 f"{where}.shards must be in strictly increasing shard order")
        previous = entry["shard"]
        _require(isinstance(entry["trials"], int) and entry["trials"] >= 0,
                 f"{where}.shards trials must be non-negative integers")
        total_trials += entry["trials"]
        resumed += bool(entry["resumed"])
    _require(total_trials == plan["trials"],
             f"{where}: shard trials sum to {total_trials}, plan says {plan['trials']}")
    _require(resumed == execution["resumed_shards"],
             f"{where}: {resumed} resumed shard entries but execution.resumed_shards="
             f"{execution['resumed_shards']}")
    _require(len(shards) - resumed == execution["executed_shards"],
             f"{where}: {len(shards) - resumed} executed shard entries but "
             f"execution.executed_shards={execution['executed_shards']}")

    ledger = run["retry_ledger"]
    _require(isinstance(ledger, list), f"{where}.retry_ledger must be a list")
    for entry in ledger:
        _require(isinstance(entry, dict)
                 and isinstance(entry.get("shard"), int)
                 and isinstance(entry.get("attempt"), int)
                 and entry.get("kind") in ("error", "timeout", "pool"),
                 f"{where}.retry_ledger entries must carry shard/attempt/kind/error")

    _require(isinstance(run["metrics"], dict), f"{where}.metrics must be an object")
    _require(run["result"] is None or isinstance(run["result"], dict),
             f"{where}.result must be an object or null")
    _require(run["checkpoint"] is None or isinstance(run["checkpoint"], dict),
             f"{where}.checkpoint must be an object or null")
