"""Counters, gauges, histograms, and the per-shard event channel.

The sharded engine (:mod:`repro.stats.parallel`) is deliberately silent:
workers compute, the parent merges, and a million-trial run prints
nothing until it returns.  This module gives every run a measurable
pulse without touching its numbers:

* **Metric primitives** — :class:`Counter` (monotone totals),
  :class:`Gauge` (last-known values) and :class:`Histogram` (per-shard
  timing distributions), collected in a :class:`MetricsRegistry` whose
  snapshots are plain JSON-ready dicts.
* **The shard-event channel** — each worker's in-shard wall time and pid
  travel back to the parent *with the shard result* (piggybacked on the
  process pool's own result transport, so the channel is process-safe by
  construction and adds no queues, locks, or shared memory).  The parent
  folds them into :class:`ShardEvent` records: one per shard, carrying
  trials, seconds, attempt count, timeout count, and whether the shard
  was resumed from a checkpoint instead of executed.
* **Deterministic aggregation** — :func:`merge_registries` and the
  registry's ``merge`` combine per-process or per-run registries with
  counter sums and histogram concatenation; aggregation of a fixed event
  set in shard order yields the same snapshot no matter in which order
  the shards *completed* (asserted by the tests).

The canonical metric names the engine emits are listed in
:data:`METRICS_CATALOGUE` and documented, with units, in
``docs/OBSERVABILITY.md``.  Nothing in this package imports the rest of
the library: observability sits below the stats layer and can never
perturb the seeding discipline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ShardEvent",
    "METRICS_CATALOGUE",
    "merge_registries",
    "trimmed_mean",
]


#: Canonical metric names -> (kind, unit, description).  The ``run.*``
#: names are emitted by the sharded engine, the ``service.*`` names by
#: the job server (:mod:`repro.service`); docs/OBSERVABILITY.md is the
#: narrative catalogue and the docs-consistency check keeps the two in
#: sync.
METRICS_CATALOGUE: dict[str, tuple[str, str, str]] = {
    "run.trials_total": ("gauge", "trials", "trial budget of the run (merged total)"),
    "run.shards_total": ("gauge", "shards", "non-empty shards in the plan"),
    "run.shards_completed": ("counter", "shards", "shards executed in this process"),
    "run.shards_resumed": ("counter", "shards", "shards loaded from a checkpoint journal"),
    "run.shard_retries": ("counter", "attempts", "failed shard attempts that were retried"),
    "run.shard_timeouts": ("counter", "events", "pooled shard attempts that timed out"),
    "run.pool_recycles": ("counter", "events", "process-pool rebuilds (timeout or broken pool)"),
    "run.shard_seconds": ("histogram", "seconds", "in-worker wall time per executed shard"),
    "run.trials_per_second": ("gauge", "trials/s", "executed trials over parent wall time"),
    "run.elapsed_seconds": ("gauge", "seconds", "parent wall time of the whole run"),
    "run.cache_hits": ("counter", "shards", "shards fetched from the result cache"),
    "run.cache_misses": ("counter", "shards", "cache probes that found no entry"),
    "run.cache_stored": ("counter", "shards", "executed shards written to the result cache"),
    "run.cache_evictions": ("counter", "entries", "cache entries evicted by this run's writes"),
    "run.journal_skipped": ("counter", "lines", "torn/undecodable checkpoint journal lines skipped on load"),
    "explore.grid_points": ("gauge", "points", "litmus test x model grid points in an exhaustive exploration"),
    "explore.outcomes_total": ("gauge", "outcomes", "enumerated outcomes summed over the explored grid"),
    "service.jobs_submitted": ("counter", "jobs", "jobs accepted and enqueued by the job server"),
    "service.jobs_deduped": ("counter", "jobs", "submissions collapsed onto an existing identical job"),
    "service.jobs_completed": ("counter", "jobs", "jobs that finished with a result"),
    "service.jobs_failed": ("counter", "jobs", "jobs that raised instead of finishing"),
    "service.jobs_resumed": ("counter", "jobs", "unfinished jobs re-enqueued after a server restart"),
    "service.jobs_rejected": ("counter", "jobs", "submissions refused by the max-queued-jobs rate control"),
    "service.queue_depth": ("gauge", "jobs", "jobs queued and not yet running (current)"),
}


@dataclass
class Counter:
    """A monotonically increasing total (retries, timeouts, shards done)."""

    name: str
    unit: str = ""
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def as_dict(self) -> dict[str, object]:
        return {"type": "counter", "unit": self.unit, "value": self.value}


@dataclass
class Gauge:
    """A last-known value (throughput, elapsed seconds)."""

    name: str
    unit: str = ""
    value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict[str, object]:
        return {"type": "gauge", "unit": self.unit, "value": self.value}


@dataclass
class Histogram:
    """A distribution of observations (per-shard wall times).

    Keeps the raw observations — shard counts are small (tens, not
    millions) — so merges are exact concatenations and summaries can
    quote true percentiles rather than bucket approximations.
    """

    name: str
    unit: str = ""
    observations: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total(self) -> float:
        return float(sum(self.observations))

    def mean(self) -> float | None:
        return self.total / self.count if self.observations else None

    def percentile(self, q: float) -> float | None:
        """The ``q``-quantile (0 <= q <= 1) by nearest-rank on sorted data."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if not self.observations:
            return None
        ordered = sorted(self.observations)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def as_dict(self) -> dict[str, object]:
        data = sorted(self.observations)
        return {
            "type": "histogram",
            "unit": self.unit,
            "count": self.count,
            "sum": self.total,
            "min": data[0] if data else None,
            "max": data[-1] if data else None,
            "mean": self.mean(),
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
        }


class MetricsRegistry:
    """A named collection of metrics with deterministic snapshots.

    ``counter``/``gauge``/``histogram`` are get-or-create (re-requesting
    a name returns the same instance; requesting it as a different kind
    raises).  ``snapshot`` serialises every metric, sorted by name, to a
    JSON-ready dict — the form embedded in run manifests.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, unit: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = kind(name, unit)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: str = "") -> Counter:
        return self._get_or_create(name, Counter, unit)

    def gauge(self, name: str, unit: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, unit)

    def histogram(self, name: str, unit: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, unit)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Every metric as a plain dict, sorted by name (JSON-ready)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place; returns self).

        Counters add, histograms concatenate observations, gauges take
        ``other``'s value when it has one (last-write-wins).  Merging is
        associative, and counter/gauge results are independent of merge
        order — the property that makes per-process registries safe to
        combine however the scheduler interleaved the work.
        """
        for name in other.names():
            theirs = other[name]
            if isinstance(theirs, Counter):
                self.counter(name, theirs.unit).inc(theirs.value)
            elif isinstance(theirs, Gauge):
                mine = self.gauge(name, theirs.unit)
                if theirs.value is not None:
                    mine.set(theirs.value)
            else:
                mine = self.histogram(name, theirs.unit)
                mine.observations.extend(theirs.observations)
        return self


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Combine several registries into a fresh one (see ``merge``)."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged


@dataclass(frozen=True)
class ShardEvent:
    """One shard's telemetry, reported back to the parent process.

    ``seconds`` is the *in-worker* wall time of the successful attempt
    (it travels back with the shard result, so queueing and transport
    are excluded); ``attempts`` counts every attempt including the
    successful one; ``resumed`` shards were loaded from a checkpoint
    journal or the result cache and never executed (their ``seconds``
    is 0.0, ``attempts`` 0, ``worker`` ``None``); ``cached`` marks the
    resumed shards that came from the content-addressed result cache
    rather than a checkpoint journal.
    """

    shard: int
    trials: int
    seconds: float
    attempts: int
    timeouts: int = 0
    resumed: bool = False
    cached: bool = False
    worker: int | None = None

    def throughput(self) -> float | None:
        """Trials per second inside the worker, if measurable."""
        if self.resumed or self.seconds <= 0.0 or self.trials <= 0:
            return None
        return self.trials / self.seconds

    def as_dict(self) -> dict[str, object]:
        return {
            "shard": self.shard,
            "trials": self.trials,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
            "cached": self.cached,
            "worker": self.worker,
        }


def trimmed_mean(values: Sequence[float], trim: float = 0.2) -> float:
    """Mean after dropping a ``trim`` fraction from each sorted end.

    The robust location estimate behind the progress line's ETA (see
    ``docs/MATH.md`` §11): shard durations are near-iid because
    ``plan_shards`` balances trial counts to within one trial, but a
    straggler (page cache miss, CPU contention) can inflate a plain mean
    — trimming bounds its influence.  With fewer than three completed
    shards nothing is dropped.
    """
    if not values:
        raise ValueError("trimmed_mean of no values")
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim fraction must lie in [0, 0.5), got {trim}")
    ordered = sorted(values)
    drop = int(len(ordered) * trim)
    kept = ordered[drop: len(ordered) - drop] if drop else ordered
    return sum(kept) / len(kept)
