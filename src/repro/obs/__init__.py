"""``repro.obs`` — observability for the sharded Monte-Carlo engine.

A long sharded run should be a glass box: while it runs you can watch a
live progress line (shards done, trials/sec, ETA); when it finishes you
hold a validated **run manifest** recording the plan identity, per-shard
wall times, the retry/timeout ledger, checkpoint lineage, and the merged
result; and if you asked for it, a JSONL **trace** of the run's internal
spans.  None of it can change a number — observation is carried on the
shard-result channel and aggregated in the parent, outside the seeding
discipline entirely.

Three modules, one plumbing object:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` in
  a ``MetricsRegistry``; ``ShardEvent``, the per-shard telemetry record;
  the canonical ``METRICS_CATALOGUE``.
* :mod:`repro.obs.trace` — ``Tracer`` with nestable ``span`` contexts
  and an opt-in JSONL writer.
* :mod:`repro.obs.manifest` — the run-manifest schema:
  ``write_manifest`` / ``load_manifest`` / ``validate_manifest``.
* :mod:`repro.obs.progress` — the ``--progress`` line and its
  trimmed-mean ETA estimator.
* :class:`repro.obs.RunObserver` — created from the estimator keywords
  ``manifest=`` / ``trace=`` / ``progress=`` and fed by the engine.

The full operational story — metric catalogue, span reference, manifest
schema with an annotated example, and a debugging walkthrough — lives in
``docs/OBSERVABILITY.md``.
"""

from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_KIND,
    ManifestError,
    build_run_record,
    load_manifest,
    summarise_result,
    validate_manifest,
    write_manifest,
)
from .metrics import (
    METRICS_CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ShardEvent,
    merge_registries,
    trimmed_mean,
)
from .observer import RunObserver
from .progress import ProgressPrinter, ProgressSnapshot, estimate_eta, format_progress
from .trace import Span, Tracer, default_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "MANIFEST_KIND",
    "METRICS_CATALOGUE",
    "ManifestError",
    "MetricsRegistry",
    "ProgressPrinter",
    "ProgressSnapshot",
    "RunObserver",
    "ShardEvent",
    "Span",
    "Tracer",
    "build_run_record",
    "default_tracer",
    "estimate_eta",
    "format_progress",
    "load_manifest",
    "merge_registries",
    "span",
    "summarise_result",
    "trimmed_mean",
    "validate_manifest",
    "write_manifest",
]
