"""``repro.parallel`` — facade over the sharded parallel trial engine.

One import surface for everything a caller needs to scale a trial budget
across processes:

>>> from repro.parallel import ShardPlan, run_sharded
>>> plan = ShardPlan(trials=10_000, shards=8, seed=42)
>>> # results = run_sharded(kernel, plan, workers=4, retries=2)

The engine lives in :mod:`repro.stats.parallel`; the fault-tolerance
layer (bounded retry, per-shard timeouts, ``BrokenProcessPool``
recovery) in :mod:`repro.stats.faults`; the run-manifest/checkpoint
journal in :mod:`repro.stats.checkpoint`; the mergers in
:mod:`repro.stats.montecarlo`.  Every high-level estimator
(:func:`repro.stats.run_bernoulli_trials`,
:func:`repro.estimate_non_manifestation`,
:func:`repro.sim.run_canonical_bug`, the :mod:`repro.analysis.sweeps`
grids, and the ``--workers`` CLI flag) routes through these primitives,
under one seeding discipline: one child stream per shard, spawned in a
single batch from the experiment seed, merged in shard order — so a run
with fixed ``(seed, shards)`` is bit-identical for any worker count,
and a retried or checkpoint-resumed shard is bit-identical to the
attempt it replaces.  When parallelism is requested and ``shards`` is
unset, the fixed :data:`~repro.stats.parallel.DEFAULT_SHARDS` applies —
never the worker or CPU count.  ``rng_plan="philox"``
(:class:`~repro.stats.rng.PhiloxSource`) swaps the spawn discipline for
counter-addressed streams — same guarantees, different (never silently
mixed) draws — and the :mod:`repro.stats.transport` layouts route shard
results home through shared memory instead of pickle, bit-identically.

Observability: pass a :class:`repro.obs.RunObserver` (re-exported here)
as ``observer=`` to :func:`run_sharded` / :func:`parallel_map` — or use
the estimators' ``manifest=`` / ``trace=`` / ``progress=`` knobs — to
collect per-shard wall times, the retry/timeout ledger, a span trace,
and a validated run manifest, without touching any number
(``docs/OBSERVABILITY.md``).

All of the execution knobs above travel together as one validated
:class:`repro.runconfig.RunConfig` (re-exported here): build it once,
pass ``config=`` to any estimator or to :func:`run_sharded` /
:func:`parallel_map`, and the per-knob keywords become deprecated
aliases (see ``docs/API.md``, "RunConfig").
"""

from .obs import RunObserver
from .runconfig import UNSET, RunConfig, resolve_run_config
from .stats.checkpoint import ShardCheckpoint, kernel_fingerprint, plan_key
from .stats.faults import (
    InjectedFault,
    RetryPolicy,
    ScriptedFaults,
    ShardExecutionError,
    TaskTelemetry,
    execute_tasks,
)
from .stats.montecarlo import merge_bernoulli, merge_categorical
from .stats.parallel import (
    DEFAULT_SHARDS,
    ShardPlan,
    is_picklable,
    parallel_map,
    plan_shards,
    resolve_shards,
    resolve_workers,
    run_sharded,
)
from .stats.rng import RNG_PLANS, PhiloxSource, philox_stream, resolve_rng_plan
from .stats.transport import (
    TRANSPORTS,
    BernoulliLayout,
    CategoricalLayout,
    ShardTable,
    WindowLayout,
    pickled_payload_bytes,
    resolve_transport,
)

__all__ = [
    "BernoulliLayout",
    "CategoricalLayout",
    "DEFAULT_SHARDS",
    "InjectedFault",
    "PhiloxSource",
    "RNG_PLANS",
    "RetryPolicy",
    "RunConfig",
    "RunObserver",
    "ScriptedFaults",
    "ShardCheckpoint",
    "ShardExecutionError",
    "ShardPlan",
    "ShardTable",
    "TRANSPORTS",
    "TaskTelemetry",
    "UNSET",
    "WindowLayout",
    "execute_tasks",
    "is_picklable",
    "kernel_fingerprint",
    "merge_bernoulli",
    "merge_categorical",
    "parallel_map",
    "philox_stream",
    "pickled_payload_bytes",
    "plan_key",
    "plan_shards",
    "resolve_rng_plan",
    "resolve_run_config",
    "resolve_shards",
    "resolve_transport",
    "resolve_workers",
    "run_sharded",
]
