"""repro — reproduction of *The Impact of Memory Models on Software
Reliability in Multiprocessors* (Jaffe, Moscibroda, Effinger-Dean, Ceze,
Strauss; PODC 2011).

The library models how hardware memory consistency models (SC, TSO, PSO,
WO) affect the probability that a canonical atomicity-violation bug
manifests, via the paper's two random processes:

* the **settling process** — randomised, model-legal instruction
  reordering that can widen the critical window between a racy load/store
  pair (:mod:`repro.core.settling`, :mod:`repro.core.window_analytic`);
* the **shift process** — geometric thread interleaving whose disjointness
  event is exactly bug *non*-manifestation (:mod:`repro.core.shift`,
  :mod:`repro.core.shift_analytic`);

joined in :mod:`repro.core.manifestation`.  A mechanistic multiprocessor
simulator (:mod:`repro.sim`) and a litmus-test kit (:mod:`repro.litmus`)
provide the execution substrate the abstract model idealises.

Quickstart
----------
>>> import repro
>>> repro.non_manifestation_probability(repro.SC).value  # Theorem 6.2
0.16666666666666666
"""

from .core import (
    ALL_PAIRS,
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    DiscreteDistribution,
    Instruction,
    InstructionType,
    MemoryModel,
    Program,
    SettlingProcess,
    SettlingResult,
    ShiftProcess,
    ValueWithError,
    asymptotic_exponent,
    disjointness_probability,
    estimate_non_manifestation,
    estimate_non_manifestation_rao_blackwell,
    generate_program,
    get_model,
    log_non_manifestation,
    manifestation_probability,
    non_manifestation_probability,
    program_from_types,
    sample_window_growth,
    table1_rows,
    theorem_62_reference,
    tso_two_thread_bounds,
    window_distribution,
)
from .errors import (
    DistributionError,
    LitmusError,
    ModelDefinitionError,
    ProgramError,
    ReproError,
    SimulationError,
    TruncationError,
)
from .runconfig import UNSET, RunConfig, resolve_run_config
from .stats import RandomSource

__version__ = "1.0.0"

__all__ = [
    "ALL_PAIRS",
    "DiscreteDistribution",
    "DistributionError",
    "Instruction",
    "InstructionType",
    "LitmusError",
    "MemoryModel",
    "ModelDefinitionError",
    "PAPER_MODELS",
    "PSO",
    "Program",
    "ProgramError",
    "RandomSource",
    "ReproError",
    "RunConfig",
    "SC",
    "SettlingProcess",
    "SettlingResult",
    "ShiftProcess",
    "SimulationError",
    "TruncationError",
    "TSO",
    "UNSET",
    "ValueWithError",
    "WO",
    "asymptotic_exponent",
    "disjointness_probability",
    "estimate_non_manifestation",
    "estimate_non_manifestation_rao_blackwell",
    "generate_program",
    "get_model",
    "log_non_manifestation",
    "manifestation_probability",
    "non_manifestation_probability",
    "program_from_types",
    "resolve_run_config",
    "sample_window_growth",
    "table1_rows",
    "theorem_62_reference",
    "tso_two_thread_bounds",
    "window_distribution",
    "__version__",
]
