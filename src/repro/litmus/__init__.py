"""Litmus-test substrate: classic tests, exact enumeration, verdicts.

Validates that the relaxation-based semantics of the paper's Table 1
reproduces the architecture literature's allowed/forbidden outcomes
(experiment E11).
"""

from .atomicity import enumerate_outcomes_non_atomic
from .checker import LitmusVerdict, check_all, check_test, outcome_to_string
from .enumerator import Outcome, enumerate_outcomes, legal_reorderings
from .generate import (
    FamilySpec,
    FamilySweepReport,
    family_digests,
    family_member,
    generate_family,
    sweep_family,
)
from .explore import (
    ConvergenceReport,
    ExhaustiveOutcomes,
    ExplorationReport,
    OutcomeFrequencies,
    assert_convergence,
    assert_frequencies_equivalent,
    check_convergence,
    enumerator_fingerprint,
    explore_entry_key,
    explore_exhaustive,
    explore_random,
    program_digest,
)
from .robustness import (
    RobustnessReport,
    RobustnessVerdict,
    classify_robustness,
    robustness_report,
)
from .zoo import (
    PSO_WB,
    SC_NMCA,
    WO_NMCA,
    ZOO_MODELS,
    enumerate_outcomes_buffered,
    get_zoo_model,
)
from .tests import (
    ALL_TESTS,
    COHERENCE_RR,
    IRIW,
    LOAD_BUFFERING,
    MESSAGE_PASSING,
    MESSAGE_PASSING_FENCED,
    R_SHAPE,
    S_SHAPE,
    WRC,
    STORE_BUFFERING,
    STORE_BUFFERING_FENCED,
    STORE_BUFFERING_HALF_FENCED,
    TWO_PLUS_TWO_W,
    LitmusTest,
    get_test,
)

__all__ = [
    "ALL_TESTS",
    "COHERENCE_RR",
    "ConvergenceReport",
    "ExhaustiveOutcomes",
    "ExplorationReport",
    "FamilySpec",
    "FamilySweepReport",
    "IRIW",
    "LOAD_BUFFERING",
    "LitmusTest",
    "LitmusVerdict",
    "MESSAGE_PASSING",
    "MESSAGE_PASSING_FENCED",
    "Outcome",
    "OutcomeFrequencies",
    "PSO_WB",
    "R_SHAPE",
    "RobustnessReport",
    "RobustnessVerdict",
    "SC_NMCA",
    "S_SHAPE",
    "STORE_BUFFERING",
    "STORE_BUFFERING_FENCED",
    "STORE_BUFFERING_HALF_FENCED",
    "TWO_PLUS_TWO_W",
    "WO_NMCA",
    "WRC",
    "ZOO_MODELS",
    "assert_convergence",
    "assert_frequencies_equivalent",
    "check_all",
    "check_convergence",
    "check_test",
    "classify_robustness",
    "enumerate_outcomes",
    "enumerate_outcomes_buffered",
    "enumerate_outcomes_non_atomic",
    "enumerator_fingerprint",
    "explore_entry_key",
    "explore_exhaustive",
    "explore_random",
    "family_digests",
    "family_member",
    "generate_family",
    "get_test",
    "get_zoo_model",
    "legal_reorderings",
    "outcome_to_string",
    "program_digest",
    "robustness_report",
    "sweep_family",
]
