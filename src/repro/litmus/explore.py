"""Sharded, cached litmus exploration — exhaustive and pseudorandom.

The enumerator (:mod:`repro.litmus.enumerator`) computes the *exact*
reachable-outcome set of a litmus test under one memory model.  This
module turns that primitive into an engine-grade workload:

**Exhaustive mode** (:func:`explore_exhaustive`) fans the full
``tests × models`` grid over :func:`~repro.stats.parallel.parallel_map`
and content-addresses each grid point's outcome set in the shard cache
(:mod:`repro.cache`).  The entry key (:func:`explore_entry_key`) folds
the *program digest* (thread names, operations, initial memory, observed
locations), the *model digest*
(:func:`~repro.core.memory_models.model_digest`: relaxation set, settle
probabilities, atomicity flavor — **not** the name), and the *enumerator
fingerprint* (the compiled code of the enumeration pipeline, v2-style) —
so a cached set can never be served for a different program, model, or
enumerator version, and a warm re-run executes **zero** grid points.
Models travel to worker processes **by value**: an ad-hoc
:class:`~repro.core.memory_models.MemoryModel` explores exactly like a
registry model, and one that *shadows* a registry name (a model called
``"TSO"`` with WO relaxations) neither resolves to the registry model in
workers nor hits its cache entries.

**Pseudorandom mode** (:func:`explore_random`) estimates outcome
frequencies for programs too large to enumerate: each trial draws one
model-legal reordering per thread and one uniformly random interleaving
from the shard's seed-disciplined stream, executes it on atomic shared
memory, and tallies the final state.  The run rides
:func:`~repro.stats.parallel.run_sharded` unchanged, so frequency tables
are **bit-identical for fixed** ``(seed, shards)`` at any worker count,
under either RNG plan (``spawn``/``philox`` draw different streams, each
reproducible), and shards checkpoint/cache like any estimation.

A trial picks the next thread with probability proportional to its
remaining operation count, which makes every distinct interleaving of
the chosen per-thread orders exactly equally likely (the product of the
step probabilities telescopes to ``∏ nₖ! / N!`` for every path).

**Convergence cross-check** (:func:`check_convergence`,
:func:`assert_convergence`, :func:`assert_frequencies_equivalent`)
relates the two modes: every sampled outcome must lie inside the
enumerated set (escape == a semantics bug, asserted hard), coverage of
the enumerated set is reported and optionally required, and two
frequency tables can be compared outcome-by-outcome with the two-sample
z-harness of :mod:`repro.kernels.validation`.

See ``docs/LITMUS.md`` for the workload tour and the cache-key contract.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from functools import partial

from ..core.memory_models import (
    PAPER_MODELS,
    MemoryModel,
    get_model,
    model_digest,
)
from ..errors import LitmusError
from ..runconfig import RunConfig, resolve_run_config
from ..sim.isa import Fence, Load, Store
from ..stats.checkpoint import kernel_fingerprint
from ..stats.parallel import (
    ShardPlan,
    parallel_map,
    resolve_workers,
    run_sharded,
)
from ..stats.rng import RandomSource
from .atomicity import (
    _execute_interleavings_non_atomic,
    enumerate_outcomes_non_atomic,
)
from .checker import outcome_to_string
from .enumerator import (
    Outcome,
    _execute_interleavings,
    _pair_may_reorder,
    enumerate_outcomes,
    legal_reorderings,
)
from .tests import ALL_TESTS, LitmusTest, get_test

__all__ = [
    "ExhaustiveOutcomes",
    "ExplorationReport",
    "OutcomeFrequencies",
    "ConvergenceReport",
    "program_digest",
    "enumerator_fingerprint",
    "explore_entry_key",
    "explore_exhaustive",
    "explore_random",
    "check_convergence",
    "assert_convergence",
    "assert_frequencies_equivalent",
]


# ----------------------------------------------------------------------
# Identity: what a cached outcome set is an outcome set *of*
# ----------------------------------------------------------------------


def program_digest(test: LitmusTest) -> str:
    """A stable hex digest of everything that determines a test's outcomes.

    Covers the thread names (they appear in outcome keys), each thread's
    operation sequence, the initial memory, and the observed locations —
    and nothing else: the registry name and prose description stay out,
    so a renamed battery keeps hitting its cached entries.
    """
    parts = []
    for program in test.programs:
        ops = ";".join(repr(operation) for operation in program.operations)
        parts.append(f"{program.name}[{ops}]")
    blob = "|".join(parts)
    blob += "|init:" + ",".join(
        f"{location}={value}"
        for location, value in sorted(test.initial_memory.items())
    )
    blob += "|obs:" + ",".join(test.observed_locations)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def enumerator_fingerprint() -> str:
    """The enumeration pipeline's computational identity (v2-style).

    :func:`~repro.stats.checkpoint.kernel_fingerprint` of
    :func:`~repro.litmus.enumerator.enumerate_outcomes` only covers that
    function's own code, so the helpers it calls are folded in as extra
    salt — any change to reordering legality or interleaving execution
    (atomic *or* non-atomic: grid points dispatch on the model's
    atomicity flavor) invalidates every cached outcome set.
    """
    extra = "|".join(
        kernel_fingerprint(helper)
        for helper in (legal_reorderings, _pair_may_reorder,
                       _execute_interleavings,
                       _execute_interleavings_non_atomic,
                       enumerate_outcomes_non_atomic)
    )
    return kernel_fingerprint(enumerate_outcomes, extra=extra)


def explore_entry_key(
    digest: str, model: MemoryModel | str, fingerprint: str
) -> str:
    """The cache entry key of one exhaustive grid point (v2).

    Mirrors :func:`repro.cache.shard_entry_key`: a sha256[:32] over a
    namespaced identity string — here the program digest, the **model
    digest** (:func:`~repro.core.memory_models.model_digest`), and the
    enumerator fingerprint.  v1 keys folded the model's *name*, which
    let an ad-hoc model shadowing a registry name silently hit the
    registry model's entries; v2 keys on semantics, so two distinct
    models never share a key whatever they are called (v1 entries are
    orphaned by design).  A registry name is still accepted and resolved
    for convenience.
    """
    if isinstance(model, str):
        model = get_model(model)
    blob = f"litmus-explore:v2:{digest}:{model_digest(model)}:{fingerprint}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExhaustiveOutcomes:
    """One grid point: the exact outcome set of ``test`` under ``model``."""

    test: str
    model: str
    outcomes: frozenset[Outcome]
    cached: bool = False


@dataclass(frozen=True)
class ExplorationReport:
    """An exhaustive exploration of a ``tests × models`` grid.

    ``results`` holds one :class:`ExhaustiveOutcomes` per grid point in
    grid order (tests outer, models inner); the cache tallies say how
    many points were fetched vs executed vs stored this run.
    """

    results: tuple[ExhaustiveOutcomes, ...]
    cache_hits: int
    cache_misses: int
    cache_stored: int
    fingerprint: str

    def outcome_set(self, test: str, model: str) -> frozenset[Outcome]:
        """The outcome set of one grid point (raises on an unknown one)."""
        for result in self.results:
            if result.test == test and result.model == model:
                return result.outcomes
        raise KeyError(f"no grid point ({test!r}, {model!r}) in this report")

    def to_json_dict(self) -> dict[str, object]:
        """A deterministic JSON-ready view: sorted outcome strings per point.

        Cache tallies and timings stay out so a warm re-run serialises
        byte-identically to the cold run that populated the cache.
        """
        tests: dict[str, dict[str, list[str]]] = {}
        for result in self.results:
            tests.setdefault(result.test, {})[result.model] = sorted(
                outcome_to_string(outcome) for outcome in result.outcomes
            )
        return {"tests": tests}


@dataclass(frozen=True)
class OutcomeFrequencies:
    """A pseudorandom exploration's outcome frequency table.

    ``counts`` is a tuple of ``(outcome, count)`` pairs sorted by
    outcome — a canonical, hashable form, so two tables produced by
    equal ``(seed, shards, rng_plan)`` runs compare equal with ``==``
    no matter how many workers executed them.
    """

    test: str
    model: str
    trials: int
    seed: int | None
    shards: int
    rng_plan: str
    counts: tuple[tuple[Outcome, int], ...]
    # Derived lookup table, rebuilt by __post_init__ — and therefore by
    # dataclasses.replace too, so a replaced table can never alias a
    # stale mapping (init=False keeps it out of the constructor and out
    # of equality/repr; identity is the canonical ``counts`` tuple).
    _counts_map: dict[Outcome, int] = field(
        init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_counts_map", dict(self.counts))

    @property
    def support(self) -> frozenset[Outcome]:
        """The set of outcomes observed at least once."""
        return frozenset(outcome for outcome, _ in self.counts)

    def count(self, outcome: Outcome) -> int:
        """How many trials ended in ``outcome`` (0 if never seen)."""
        return self._counts_map.get(outcome, 0)

    def frequency(self, outcome: Outcome) -> float:
        """The empirical probability of ``outcome``."""
        return self.count(outcome) / self.trials

    def to_json_dict(self) -> dict[str, object]:
        """A JSON-ready view keyed by rendered outcome strings."""
        return {
            "test": self.test,
            "model": self.model,
            "trials": self.trials,
            "seed": self.seed,
            "shards": self.shards,
            "rng_plan": self.rng_plan,
            "counts": {outcome_to_string(outcome): count
                       for outcome, count in self.counts},
        }


# ----------------------------------------------------------------------
# Exhaustive mode
# ----------------------------------------------------------------------


def _resolve_tests(tests) -> list[LitmusTest]:
    if tests is None:
        return list(ALL_TESTS)
    return [get_test(test) if isinstance(test, str) else test
            for test in tests]


def _resolve_models(models) -> list[MemoryModel]:
    if models is None:
        return list(PAPER_MODELS)
    from .zoo import get_zoo_model
    return [get_zoo_model(model) if isinstance(model, str) else model
            for model in models]


def _enumerate_for_model(test: LitmusTest, model: MemoryModel) -> frozenset:
    """Enumerate one (test, model) point, dispatching on atomicity."""
    if model.atomicity == "non_atomic":
        if test.observed_locations:
            raise LitmusError(
                f"{test.name}/{model.name}: final memory is ill-defined "
                "under non-atomic stores; tests explored under a "
                "non_atomic model must observe registers only")
        return frozenset(enumerate_outcomes_non_atomic(
            list(test.programs), model, dict(test.initial_memory),
        ))
    return frozenset(enumerate_outcomes(
        list(test.programs), model, dict(test.initial_memory),
        test.observed_locations,
    ))


def _exhaustive_point(
    point: tuple[LitmusTest, MemoryModel],
) -> tuple[frozenset, float, int]:
    """Enumerate one grid point; returns (outcomes, seconds, worker pid).

    The point carries the :class:`LitmusTest` *and* the
    :class:`~repro.core.memory_models.MemoryModel` themselves (both
    picklable) rather than registry names — ad-hoc tests and ad-hoc
    models fan out over the pool just like battery/registry ones, and a
    model that shadows a registry name keeps its own semantics in the
    worker (the v1 kernel re-resolved ``get_model(name)`` here, which
    crashed on unregistered models and silently swapped in the registry
    model on shadowed names).
    """
    test, model = point
    started = time.perf_counter()
    outcomes = _enumerate_for_model(test, model)
    return outcomes, time.perf_counter() - started, os.getpid()


def explore_exhaustive(
    tests=None,
    models=None,
    *,
    config: RunConfig | None = None,
) -> ExplorationReport:
    """Enumerate every ``tests × models`` grid point, cached and sharded.

    ``tests``/``models`` accept names or instances (default: the full
    battery under all four paper models).  With ``config.cache`` set,
    each point's outcome set is content-addressed under
    :func:`explore_entry_key`; cached points are fetched without
    executing, so a warm re-run executes zero points.  Uncached points
    fan out over :func:`~repro.stats.parallel.parallel_map` with the
    config's workers/retries/timeout.  Observability knobs produce the
    standard manifest: cached points appear as cached shards and the
    cache tallies land in ``run.cache_hits``/``run.cache_misses``.
    """
    cfg = resolve_run_config(config).resolve()
    tests = _resolve_tests(tests)
    models = _resolve_models(models)
    if not tests or not models:
        raise LitmusError("exploration needs at least one test and one model")
    fingerprint = enumerator_fingerprint()
    grid = [(test.name, model.name) for test in tests for model in models]
    if len(set(grid)) != len(grid):
        raise LitmusError("duplicate (test, model) grid points in exploration")
    points = {(test.name, model.name): (test, model)
              for test in tests for model in models}
    digests = {test.name: program_digest(test) for test in tests}
    keys = {(test.name, model.name):
            explore_entry_key(digests[test.name], model, fingerprint)
            for test in tests for model in models}

    store = None
    if cfg.cache not in (None, False):
        from ..cache import resolve_cache
        store = resolve_cache(cfg.cache)

    cached: dict[tuple[str, str], frozenset] = {}
    misses: list[tuple[str, str]] = []
    for point in grid:
        hit = store.get(keys[point]) if store is not None else None
        if hit is not None:
            cached[point] = hit
        else:
            misses.append(point)

    observer = cfg.observer("litmus-explore")
    if observer is not None:
        # Each grid point counts as one shard of work, exactly as
        # parallel_map reports sweep items — the manifest schema's
        # "sharded" mode covers grid fan-outs too.
        observer.run_started(
            trials=len(grid), shards=len(grid), seed=None,
            workers=resolve_workers(cfg.workers),
            active_shards=len(grid), retries=cfg.retries,
            timeout=cfg.timeout,
        )
    position = {point: index for index, point in enumerate(grid)}
    if observer is not None:
        for point in grid:
            if point in cached:
                observer.shard_cached(position[point], 1)

    executed = []
    if misses:
        executed = parallel_map(
            _exhaustive_point, [points[point] for point in misses],
            workers=cfg.workers, retries=cfg.retries, timeout=cfg.timeout,
        )

    evictions = 0
    outcome_sets: dict[tuple[str, str], frozenset] = dict(cached)
    for point, (outcomes, seconds, worker) in zip(misses, executed):
        outcome_sets[point] = outcomes
        if store is not None:
            evictions += store.put(keys[point], outcomes)
        if observer is not None:
            from ..obs import ShardEvent
            observer.shard_finished(ShardEvent(
                shard=position[point], trials=1, seconds=seconds,
                attempts=1, worker=worker,
            ))

    stored = len(misses) if store is not None else 0
    results = tuple(
        ExhaustiveOutcomes(test=test_name, model=model_name,
                           outcomes=outcome_sets[(test_name, model_name)],
                           cached=(test_name, model_name) in cached)
        for test_name, model_name in grid
    )
    report = ExplorationReport(
        results=results, cache_hits=len(cached), cache_misses=len(misses),
        cache_stored=stored, fingerprint=fingerprint,
    )
    if observer is not None:
        if store is not None:
            observer.cache_summary(hits=len(cached), misses=len(misses),
                                   stored=stored, evictions=evictions)
        observer.annotate("explore.grid_points", len(grid), "points")
        observer.annotate(
            "explore.outcomes_total",
            sum(len(result.outcomes) for result in results), "outcomes")
        observer.finish(report.to_json_dict())
    return report


# ----------------------------------------------------------------------
# Pseudorandom mode
# ----------------------------------------------------------------------


def _sample_atomic_trial(
    source: RandomSource,
    threads: list[tuple],
    names: list[str],
    initial_memory: dict[str, int],
    observed: tuple[str, ...],
) -> Outcome:
    """One sampled execution over atomic shared memory.

    Draws a uniformly random interleaving of the given per-thread orders
    (next thread picked proportionally to its remaining operations) and
    executes it exactly as the enumerator executes its exhaustive
    interleavings.
    """
    remaining = [len(thread) for thread in threads]
    pcs = [0] * len(threads)
    total = sum(remaining)
    memory = dict(initial_memory)
    registers: dict[str, int] = {}
    while total:
        pick = source.uniform_int(1, total)
        index = 0
        while pick > remaining[index]:
            pick -= remaining[index]
            index += 1
        operation = threads[index][pcs[index]]
        pcs[index] += 1
        remaining[index] -= 1
        total -= 1
        if isinstance(operation, Load):
            registers[f"{names[index]}:{operation.dst}"] = memory.get(
                operation.location, 0)
        elif isinstance(operation, Store):
            if operation.src is not None:
                value = registers.get(f"{names[index]}:{operation.src}", 0)
            else:
                value = operation.value
            memory[operation.location] = value
    entries = list(registers.items())
    entries += [(f"mem:{location}", memory.get(location, 0))
                for location in observed]
    return tuple(sorted(entries))


def _sample_non_atomic_trial(
    source: RandomSource,
    threads: list[tuple],
    names: list[str],
    initial_memory: dict[str, int],
) -> Outcome:
    """One sampled execution with non-atomic store propagation.

    Mirrors the non-atomic enumerator's event semantics
    (:mod:`repro.litmus.atomicity`): each step picks uniformly among the
    *enabled* events — a thread's next instruction (a full fence only
    once the thread's outgoing channels are drained) or the delivery of
    some channel's oldest pending store.  Every sampled execution is a
    path of the exhaustive event tree, so sampled outcomes converge into
    the enumerated non-atomic set.  Terminates (every event advances a
    pc or shrinks a channel) and never deadlocks (a blocked fence implies
    a non-empty channel, which is a deliverable event).
    """
    n = len(threads)
    views = [dict(initial_memory) for _ in range(n)]
    channels: list[list[tuple[str, int]]] = [[] for _ in range(n * n)]
    pcs = [0] * n
    registers: dict[str, int] = {}
    while True:
        events: list[int] = []  # thread k as k, delivery on channel c as n + c
        for k in range(n):
            if pcs[k] >= len(threads[k]):
                continue
            operation = threads[k][pcs[k]]
            if isinstance(operation, Fence) and any(
                    channels[k * n + reader] for reader in range(n)):
                continue
            events.append(k)
        for index in range(n * n):
            if channels[index]:
                events.append(n + index)
        if not events:
            break
        event = events[source.uniform_int(0, len(events) - 1)]
        if event >= n:
            index = event - n
            location, value = channels[index].pop(0)
            views[index % n][location] = value
            continue
        operation = threads[event][pcs[event]]
        pcs[event] += 1
        if isinstance(operation, Load):
            registers[f"{names[event]}:{operation.dst}"] = views[event].get(
                operation.location, 0)
        elif isinstance(operation, Store):
            if operation.src is not None:
                value = registers.get(f"{names[event]}:{operation.src}", 0)
            else:
                value = operation.value
            views[event][operation.location] = value
            for reader in range(n):
                if reader != event:
                    channels[event * n + reader].append(
                        (operation.location, value))
    return tuple(sorted(registers.items()))


def _random_shard(
    source: RandomSource,
    trials: int,
    *,
    test: LitmusTest,
    model: MemoryModel,
    model_identity: str = "",
) -> dict[Outcome, int]:
    """One shard of pseudorandom exploration: ``trials`` sampled executions.

    Each trial draws a uniformly random legal reordering per thread and
    one random execution of the chosen orders — over atomic shared
    memory, or through the propagation-event sampler when the model's
    atomicity flavor is ``non_atomic``.  The bound ``test`` and ``model``
    (both picklable — the model travels **by value**, never re-resolved
    from a registry) enter the kernel fingerprint via the ``partial``,
    as does ``model_identity`` — the explicit
    :func:`~repro.core.memory_models.model_digest` salt, so checkpoints
    and cache entries key on the actual program *and* the actual model
    semantics.
    """
    del model_identity  # fingerprint salt only
    orders = [legal_reorderings(program, model) for program in test.programs]
    names = [program.name for program in test.programs]
    non_atomic = model.atomicity == "non_atomic"
    initial_memory = dict(test.initial_memory)
    observed = test.observed_locations
    counts: dict[Outcome, int] = {}
    for _ in range(trials):
        threads = [
            choices[source.uniform_int(0, len(choices) - 1)]
            if len(choices) > 1 else choices[0]
            for choices in orders
        ]
        if non_atomic:
            outcome = _sample_non_atomic_trial(
                source, threads, names, initial_memory)
        else:
            outcome = _sample_atomic_trial(
                source, threads, names, initial_memory, observed)
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def explore_random(
    test,
    model,
    trials: int,
    *,
    seed: int | None = 0,
    config: RunConfig | None = None,
) -> OutcomeFrequencies:
    """Estimate outcome frequencies by seed-disciplined random exploration.

    The table depends only on ``(seed, shards, rng_plan)`` — shards
    merge in shard order, so results are bit-identical at any worker
    count and over any transport.  The run inherits the config's full
    engine surface: checkpoints resume it, the shard cache fetches
    previously-computed shards, and the observability knobs produce the
    standard manifest/trace/progress.
    """
    cfg = resolve_run_config(config).resolve()
    test = get_test(test) if isinstance(test, str) else test
    model = _resolve_models([model])[0]
    if trials < 1:
        raise LitmusError(f"trials must be positive, got {trials}")
    if model.atomicity == "non_atomic" and test.observed_locations:
        raise LitmusError(
            f"{test.name}/{model.name}: final memory is ill-defined under "
            "non-atomic stores; tests explored under a non_atomic model "
            "must observe registers only")
    plan = ShardPlan(trials, cfg.resolved_shards(), seed, cfg.rng_plan)
    identity = model_digest(model)
    kernel = partial(_random_shard, test=test, model=model,
                     model_identity=identity)
    label = f"litmus-explore:{test.name}:{model.name}:{identity}"

    def execute(observer):
        return run_sharded(kernel, plan, workers=cfg.workers,
                           checkpoint_label=label, observer=observer,
                           **cfg.engine_options())

    def merge(parts) -> OutcomeFrequencies:
        totals: dict[Outcome, int] = {}
        for part in parts:
            for outcome, count in part.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return OutcomeFrequencies(
            test=test.name, model=model.name, trials=trials, seed=plan.seed,
            shards=plan.shards, rng_plan=plan.rng_plan,
            counts=tuple(sorted(totals.items())),
        )

    observer = cfg.observer(label)
    if observer is None:
        return merge(execute(None))
    with observer.span("run"):
        with observer.span("shards"):
            parts = execute(observer)
        with observer.span("merge"):
            merged = merge(parts)
    observer.finish(merged.to_json_dict())
    return merged


# ----------------------------------------------------------------------
# Convergence cross-check
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConvergenceReport:
    """How a sampled frequency table relates to the enumerated truth."""

    test: str
    model: str
    trials: int
    enumerated: frozenset[Outcome]
    sampled: frozenset[Outcome]

    @property
    def escaped(self) -> frozenset[Outcome]:
        """Sampled outcomes OUTSIDE the enumerated set (must be empty)."""
        return self.sampled - self.enumerated

    @property
    def unseen(self) -> frozenset[Outcome]:
        """Enumerated outcomes the sampler has not hit yet."""
        return self.enumerated - self.sampled

    @property
    def contained(self) -> bool:
        return not self.escaped

    @property
    def converged(self) -> bool:
        """Contained with full support: the sampler found every outcome."""
        return self.contained and not self.unseen

    @property
    def coverage(self) -> float:
        """Fraction of the enumerated set the sampler has observed."""
        if not self.enumerated:
            return 1.0
        return len(self.sampled & self.enumerated) / len(self.enumerated)


def check_convergence(
    frequencies: OutcomeFrequencies,
    enumerated: frozenset[Outcome] | ExhaustiveOutcomes | None = None,
    *,
    test: LitmusTest | str | None = None,
    model: MemoryModel | str | None = None,
) -> ConvergenceReport:
    """Relate a sampled table to the enumerated outcome set.

    ``enumerated`` may be a pre-computed set (e.g. from an
    :class:`ExplorationReport`) or ``None`` to enumerate here.  The
    ``None`` form enumerates from ``test``/``model`` when given;
    otherwise it looks both up by the *names* recorded in the table —
    so ad-hoc tests or models outside the registries must pass either
    their enumerated set or the instances themselves (a frequency table
    records names only, and a name is not an identity).  Enumeration
    dispatches on the model's atomicity flavor.
    """
    if enumerated is None:
        if test is None:
            test = get_test(frequencies.test)
        else:
            test = _resolve_tests([test])[0]
        if model is None:
            model = get_model(frequencies.model)
        else:
            model = _resolve_models([model])[0]
        enumerated = _enumerate_for_model(test, model)
    elif isinstance(enumerated, ExhaustiveOutcomes):
        enumerated = enumerated.outcomes
    return ConvergenceReport(
        test=frequencies.test, model=frequencies.model,
        trials=frequencies.trials, enumerated=frozenset(enumerated),
        sampled=frequencies.support,
    )


def assert_convergence(
    frequencies: OutcomeFrequencies,
    enumerated: frozenset[Outcome] | ExhaustiveOutcomes | None = None,
    *,
    test: LitmusTest | str | None = None,
    model: MemoryModel | str | None = None,
    require_full_support: bool = False,
) -> ConvergenceReport:
    """Hard-assert containment (and, optionally, full support).

    A sampled outcome outside the enumerated set means the two modes
    disagree about the semantics — always an error.  ``unseen`` outcomes
    are a sampling-budget question, so they only raise when the caller
    demands full support.
    """
    report = check_convergence(frequencies, enumerated, test=test, model=model)
    if report.escaped:
        rendered = ", ".join(sorted(outcome_to_string(outcome)
                                    for outcome in report.escaped))
        raise LitmusError(
            f"{report.test}/{report.model}: sampled outcome(s) escape the "
            f"enumerated set after {report.trials} trials: {rendered}")
    if require_full_support and report.unseen:
        rendered = ", ".join(sorted(outcome_to_string(outcome)
                                    for outcome in report.unseen))
        raise LitmusError(
            f"{report.test}/{report.model}: enumerated outcome(s) never "
            f"sampled in {report.trials} trials "
            f"(coverage {report.coverage:.3f}): {rendered}")
    return report


def assert_frequencies_equivalent(
    first: OutcomeFrequencies,
    second: OutcomeFrequencies,
    *,
    confidence: float = 0.999,
) -> None:
    """z-test every outcome's frequency across two independent tables.

    Reuses the two-sample proportion harness of
    :mod:`repro.kernels.validation` over the union support — e.g. a
    spawn-plan run against a philox-plan run of the same program, which
    sample the same law from different streams.
    """
    from ..kernels.validation import assert_equivalent_proportions

    first_counts = dict(first.counts)
    second_counts = dict(second.counts)
    for outcome in sorted(set(first_counts) | set(second_counts)):
        assert_equivalent_proportions(
            first_counts.get(outcome, 0), first.trials,
            second_counts.get(outcome, 0), second.trials,
            confidence=confidence,
            context=(f"{first.test}/{first.model} outcome "
                     f"{outcome_to_string(outcome)}"),
        )
