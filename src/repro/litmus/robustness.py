"""TSO/PSO/WO robustness: is a program's weak-memory behaviour SC-equivalent?

A program is *robust* against a memory model when the model admits no
execution behaviour beyond sequential consistency — the notion Bouajjani,
Meyer and Möhlmann decide for TSO by reduction to SC reachability
("Deciding Robustness against Total Store Ordering").  Under the paper's
store-atomic, reordering-only semantics, the enumerator computes exact
reachable-outcome sets, so robustness here is a plain set question:

    robust(test, model)  ⇔  outcomes(test, model) == outcomes(test, SC)

The SC set is always a subset (the identity ordering is legal in every
model), so non-robustness is witnessed by concrete *extra outcomes* —
final states only the weak model can reach — which the verdict carries
for reporting.

Classification rides :func:`~repro.litmus.explore.explore_exhaustive`,
so a battery report shares the exploration engine's grid fan-out and
content-addressed outcome-set cache: re-classifying a battery against a
warm cache enumerates nothing.

Classic pins (asserted in the tests): SB is non-robust under TSO (its
ST→LD reordering is exactly TSO's relaxation), while MP is robust under
TSO (ST/ST and LD/LD pairs do not reorder) yet non-robust under PSO.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.memory_models import PSO, TSO, WO, get_model
from ..runconfig import RunConfig
from .checker import outcome_to_string
from .enumerator import Outcome
from .explore import ExplorationReport, _resolve_models, _resolve_tests, explore_exhaustive

__all__ = ["RobustnessVerdict", "RobustnessReport", "classify_robustness",
           "robustness_report"]

#: The SC-equivalence baseline every verdict diffs against.
BASELINE = "SC"


@dataclass(frozen=True)
class RobustnessVerdict:
    """One (test, model) classification against the SC baseline."""

    test: str
    model: str
    robust: bool
    extra_outcomes: tuple[Outcome, ...]

    def describe(self) -> str:
        if self.robust:
            return f"{self.test} is robust against {self.model}"
        rendered = "; ".join(outcome_to_string(outcome)
                             for outcome in self.extra_outcomes)
        return (f"{self.test} admits {len(self.extra_outcomes)} non-SC "
                f"outcome(s) under {self.model}: {rendered}")


@dataclass(frozen=True)
class RobustnessReport:
    """Per-battery robustness classification (verdicts in grid order)."""

    baseline: str
    verdicts: tuple[RobustnessVerdict, ...]

    def robust(self, test: str, model: str) -> bool:
        """The classification of one (test, model) pair."""
        for verdict in self.verdicts:
            if verdict.test == test and verdict.model == model:
                return verdict.robust
        raise KeyError(f"no verdict for ({test!r}, {model!r})")

    def rows(self) -> list[dict[str, object]]:
        """One table row per test: robust/NON-ROBUST cell per model."""
        models: list[str] = []
        for verdict in self.verdicts:
            if verdict.model not in models:
                models.append(verdict.model)
        rows = []
        for verdict in self.verdicts:
            if not rows or rows[-1]["test"] != verdict.test:
                rows.append({"test": verdict.test})
            rows[-1][verdict.model] = (
                "robust" if verdict.robust
                else f"NON-ROBUST (+{len(verdict.extra_outcomes)})")
        return rows

    def to_json_dict(self) -> dict[str, object]:
        """A deterministic JSON-ready view of every verdict."""
        verdicts: dict[str, dict[str, object]] = {}
        for verdict in self.verdicts:
            verdicts.setdefault(verdict.test, {})[verdict.model] = {
                "robust": verdict.robust,
                "extra_outcomes": [outcome_to_string(outcome)
                                   for outcome in verdict.extra_outcomes],
            }
        return {"baseline": self.baseline, "verdicts": verdicts}


def classify_robustness(
    test, model, *, config: RunConfig | None = None
) -> RobustnessVerdict:
    """Classify one test against one model (see :func:`robustness_report`)."""
    report = robustness_report([test], [model], config=config)
    return report.verdicts[0]


def robustness_report(
    tests=None,
    models=None,
    *,
    config: RunConfig | None = None,
    exploration: ExplorationReport | None = None,
) -> RobustnessReport:
    """Diff enumerated outcome sets against SC across a battery.

    ``models`` defaults to the three weak paper models (TSO, PSO, WO);
    an explicit SC entry is ignored (SC is trivially robust against
    itself).  ``exploration`` may supply a pre-computed
    :class:`~repro.litmus.explore.ExplorationReport` covering the tests
    under SC and every requested model; otherwise the grid is explored
    here with ``config`` (so a configured cache is shared with any other
    exploration of the same programs).
    """
    tests = _resolve_tests(tests)
    models = [model for model in
              _resolve_models(models if models is not None else (TSO, PSO, WO))
              if model.name != BASELINE]
    if exploration is None:
        grid_models = [get_model(BASELINE)] + models
        exploration = explore_exhaustive(tests, grid_models, config=config)
    verdicts = []
    for test in tests:
        baseline = exploration.outcome_set(test.name, BASELINE)
        for model in models:
            reachable = exploration.outcome_set(test.name, model.name)
            extra = tuple(sorted(reachable - baseline))
            verdicts.append(RobustnessVerdict(
                test=test.name, model=model.name,
                robust=not extra, extra_outcomes=extra))
    return RobustnessReport(baseline=BASELINE, verdicts=tuple(verdicts))
