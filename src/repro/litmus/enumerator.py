"""Exhaustive litmus-test enumeration under a relaxation-based semantics.

The paper characterises a memory model purely by which ordered pairs of
memory-operation types may reorder (Table 1), ignoring store atomicity
(§2.1).  Under that semantics, the executions of a multi-threaded
straight-line program are exactly:

1. choose, per thread, a *legal reordering* of its operations — a
   permutation whose every inverted pair ``(i, j)`` (i before j in program
   order, j before i after) satisfies: the model relaxes
   ``(type_i, type_j)``, the operations touch different addresses, there
   is no register dependency between them, and neither is (or crosses) a
   fence;
2. interleave the reordered threads arbitrarily over an atomic shared
   memory.

A permutation with only swappable inversions is always reachable by
adjacent swaps of inverted pairs (bubble-sort argument), so pairwise
inversion-legality coincides with the settling process's reachability.

For the classic 2–4 thread, 2–3 operation litmus shapes this enumeration
is tiny, and it yields the *exact* set of reachable outcomes per model —
experiment E11's ground truth.
"""

from __future__ import annotations

from itertools import permutations, product

from ..core.instructions import InstructionType
from ..core.memory_models import MemoryModel
from ..errors import LitmusError
from ..sim.isa import Load, Operation, Store, ThreadProgram

__all__ = ["Outcome", "legal_reorderings", "enumerate_outcomes"]

#: A final state: sorted tuple of ("T0:r1", value) register entries plus
#: ("mem:x", value) entries for observed locations.
Outcome = tuple[tuple[str, int], ...]


def _validate_operation(operation: Operation) -> None:
    if not (operation.is_load or operation.is_store or operation.is_fence):
        raise LitmusError(
            f"litmus programs may contain only loads, stores and fences, got {operation}"
        )


def _operation_type(operation: Operation) -> InstructionType:
    if operation.is_load:
        return InstructionType.LOAD
    if operation.is_store:
        return InstructionType.STORE
    raise LitmusError(f"not a memory operation: {operation}")


def _depends(earlier: Operation, later: Operation) -> bool:
    """Register dependency (true, anti, or output) between two operations."""
    earlier_writes = set(earlier.writes())
    later_writes = set(later.writes())
    return bool(
        earlier_writes & set(later.reads())
        or set(earlier.reads()) & later_writes
        or earlier_writes & later_writes
    )


def _pair_may_reorder(model: MemoryModel, earlier: Operation, later: Operation) -> bool:
    if earlier.is_fence or later.is_fence:
        return False  # a full fence: nothing crosses it, it never moves
    if earlier.address is not None and earlier.address == later.address:
        return False
    if _depends(earlier, later):
        return False
    return model.relaxes(_operation_type(earlier), _operation_type(later))


def legal_reorderings(
    program: ThreadProgram, model: MemoryModel
) -> list[tuple[Operation, ...]]:
    """All model-legal orderings of one thread's operations.

    The identity order is always legal; SC yields exactly one ordering.
    """
    operations = list(program.operations)
    for operation in operations:
        _validate_operation(operation)
    legal: list[tuple[Operation, ...]] = []
    for order in permutations(range(len(operations))):
        position = {original: slot for slot, original in enumerate(order)}
        ok = True
        for i in range(len(operations)):
            for j in range(i + 1, len(operations)):
                if position[i] > position[j] and not _pair_may_reorder(
                    model, operations[i], operations[j]
                ):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            legal.append(tuple(operations[original] for original in order))
    return legal


def _execute_interleavings(
    threads: list[tuple[Operation, ...]],
    thread_names: list[str],
    initial_memory: dict[str, int],
    observed_locations: tuple[str, ...],
) -> set[Outcome]:
    """All outcomes of all interleavings of fixed per-thread orders.

    DFS over program counters with memoisation on (pcs, memory, registers):
    distinct interleavings reaching identical states are explored once.
    """
    outcomes: set[Outcome] = set()
    seen: set[tuple] = set()
    n = len(threads)

    def freeze(pcs: tuple[int, ...], memory: dict[str, int], registers: dict[str, int]):
        return (pcs, tuple(sorted(memory.items())), tuple(sorted(registers.items())))

    def record(memory: dict[str, int], registers: dict[str, int]) -> None:
        entries = [(name, value) for name, value in registers.items()]
        entries += [(f"mem:{loc}", memory.get(loc, 0)) for loc in observed_locations]
        outcomes.add(tuple(sorted(entries)))

    def step(pcs: tuple[int, ...], memory: dict[str, int], registers: dict[str, int]) -> None:
        key = freeze(pcs, memory, registers)
        if key in seen:
            return
        seen.add(key)
        if all(pcs[k] >= len(threads[k]) for k in range(n)):
            record(memory, registers)
            return
        for k in range(n):
            if pcs[k] >= len(threads[k]):
                continue
            operation = threads[k][pcs[k]]
            new_memory = memory
            new_registers = registers
            if isinstance(operation, Load):
                new_registers = dict(registers)
                new_registers[f"{thread_names[k]}:{operation.dst}"] = memory.get(
                    operation.location, 0
                )
            elif isinstance(operation, Store):
                new_memory = dict(memory)
                if operation.src is not None:
                    value = registers.get(f"{thread_names[k]}:{operation.src}", 0)
                else:
                    assert operation.value is not None
                    value = operation.value
                new_memory[operation.location] = value
            next_pcs = tuple(pc + 1 if index == k else pc for index, pc in enumerate(pcs))
            step(next_pcs, new_memory, new_registers)

    step(tuple([0] * n), dict(initial_memory), {})
    return outcomes


def enumerate_outcomes(
    programs: list[ThreadProgram],
    model: MemoryModel,
    initial_memory: dict[str, int] | None = None,
    observed_locations: tuple[str, ...] = (),
) -> set[Outcome]:
    """The exact reachable-outcome set of a litmus test under ``model``."""
    if not programs:
        raise LitmusError("a litmus test needs at least one thread")
    per_thread = [legal_reorderings(program, model) for program in programs]
    names = [program.name for program in programs]
    outcomes: set[Outcome] = set()
    for choice in product(*per_thread):
        outcomes |= _execute_interleavings(
            list(choice), names, dict(initial_memory or {}), observed_locations
        )
    return outcomes
