"""Verdicts: does each memory model allow each litmus test's relaxed outcome?

The checker runs the exact enumerator over a litmus test for each paper
model and compares the reachable-outcome set against the literature
expectation recorded on the test (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.memory_models import PAPER_MODELS, MemoryModel
from .enumerator import Outcome, enumerate_outcomes
from .tests import LitmusTest

__all__ = ["LitmusVerdict", "check_test", "check_all", "outcome_to_string"]


@dataclass(frozen=True)
class LitmusVerdict:
    """The enumerated result of one (test, model) pair."""

    test: LitmusTest
    model: MemoryModel
    outcomes: frozenset[Outcome]
    relaxed_reachable: bool
    expected: bool

    @property
    def matches_literature(self) -> bool:
        """Whether the enumeration agrees with the recorded expectation."""
        return self.relaxed_reachable == self.expected

    def __str__(self) -> str:
        status = "allowed" if self.relaxed_reachable else "forbidden"
        agreement = "OK" if self.matches_literature else "MISMATCH"
        return (
            f"{self.test.name} under {self.model.name}: relaxed outcome {status} "
            f"({len(self.outcomes)} reachable outcomes) [{agreement}]"
        )


def check_test(test: LitmusTest, model: MemoryModel) -> LitmusVerdict:
    """Enumerate one test under one model and compare with expectations."""
    outcomes = enumerate_outcomes(
        list(test.programs),
        model,
        initial_memory=test.initial_memory,
        observed_locations=test.observed_locations,
    )
    relevant = {_restrict(outcome, test.relaxed_outcome) for outcome in outcomes}
    reachable = test.relaxed_outcome in relevant
    return LitmusVerdict(
        test=test,
        model=model,
        outcomes=frozenset(outcomes),
        relaxed_reachable=reachable,
        expected=test.allowed[model.name],
    )


def _restrict(outcome: Outcome, reference: Outcome) -> Outcome:
    """Project an outcome onto the keys mentioned by the reference outcome.

    Tests name only the registers/locations that matter; reachable outcomes
    carry every register, so comparison projects first.
    """
    keys = {key for key, _ in reference}
    return tuple(sorted((key, value) for key, value in outcome if key in keys))


def check_all(
    tests: tuple[LitmusTest, ...] | list[LitmusTest] | None = None,
    models: tuple[MemoryModel, ...] = PAPER_MODELS,
) -> list[LitmusVerdict]:
    """Check every (test, model) pair; used by the E11 bench and tests."""
    from .tests import ALL_TESTS

    verdicts = []
    for test in tests if tests is not None else ALL_TESTS:
        for model in models:
            verdicts.append(check_test(test, model))
    return verdicts


def outcome_to_string(outcome: Outcome) -> str:
    """Human-readable rendering, e.g. ``"T0:r1=0 T1:r2=0"``."""
    return " ".join(f"{key}={value}" for key, value in outcome)
