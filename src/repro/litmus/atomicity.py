"""Non-atomic stores: the axis the paper deliberately scopes out (§2.1).

The paper cites Arvind–Maessen's decomposition *"memory model =
instruction reordering + store atomicity"* and analyses only the
reordering half, calling atomicity "tangential to our present analysis".
This module builds the other half so that the scoping decision can be
*checked* rather than assumed:

* stores become visible to other threads **asynchronously** — each
  (writer, reader) pair has a FIFO propagation channel, and a reader's
  view applies a writer's stores in issue order but interleaves different
  writers' stores arbitrarily (the weakest, non-coherent-across-writers
  form of non-atomicity);
* the writer sees its own stores immediately (store forwarding);
* :func:`enumerate_outcomes_non_atomic` exhaustively interleaves
  instruction execution with propagation events, per-thread reorderings
  included, and returns the exact reachable register outcomes.

The atomicity bench (E15) shows the orthogonality concretely: under
**SC ordering with non-atomic stores**, store buffering (SB) and IRIW
relaxed outcomes become reachable with *zero* instruction reordering,
while per-writer FIFO keeps CoRR forbidden.  Non-atomicity is thus an
independent source of the same class of risk — consistent with the
paper's choice to study reordering in isolation.
"""

from __future__ import annotations

from itertools import product

from ..core.memory_models import MemoryModel
from ..errors import LitmusError
from ..sim.isa import Load, Operation, Store, ThreadProgram
from .enumerator import Outcome, legal_reorderings

__all__ = ["enumerate_outcomes_non_atomic"]

#: A thread's private memory view: sorted (location, value) pairs.
_View = tuple[tuple[str, int], ...]
#: One propagation channel's pending stores, oldest first.
_Channel = tuple[tuple[str, int], ...]


def _view_get(view: _View, location: str) -> int:
    for key, value in view:
        if key == location:
            return value
    return 0


def _view_set(view: _View, location: str, value: int) -> _View:
    entries = dict(view)
    entries[location] = value
    return tuple(sorted(entries.items()))


def _execute_interleavings_non_atomic(
    threads: list[tuple[Operation, ...]],
    thread_names: list[str],
    initial_memory: dict[str, int],
) -> set[Outcome]:
    """All outcomes of one choice of per-thread orders, with propagation.

    The nondeterminism per state: any thread may execute its next
    operation, or any non-empty propagation channel may deliver its
    oldest store to its reader's view.  A full fence is the exception:
    it blocks until the thread's outgoing channels are empty, i.e. its
    earlier stores have propagated everywhere.
    """
    n = len(threads)
    initial_view: _View = tuple(sorted(initial_memory.items()))
    initial_views = tuple(initial_view for _ in range(n))
    empty_channels: tuple[_Channel, ...] = tuple(() for _ in range(n * n))

    outcomes: set[Outcome] = set()
    seen: set[tuple] = set()

    def channel_index(writer: int, reader: int) -> int:
        return writer * n + reader

    def record(registers: tuple[tuple[str, int], ...]) -> None:
        outcomes.add(tuple(sorted(registers)))

    def step(
        pcs: tuple[int, ...],
        views: tuple[_View, ...],
        channels: tuple[_Channel, ...],
        registers: tuple[tuple[str, int], ...],
    ) -> None:
        key = (pcs, views, channels, registers)
        if key in seen:
            return
        seen.add(key)
        finished = all(pcs[k] >= len(threads[k]) for k in range(n))
        pending = any(channels)
        if finished and not pending:
            record(registers)
            return
        if finished:
            # Remaining propagation cannot change registers; record now and
            # still drain (cheap) so nested states do not multiply.
            record(registers)

        # Instruction steps.
        for k in range(n):
            if pcs[k] >= len(threads[k]):
                continue
            operation = threads[k][pcs[k]]
            next_pcs = tuple(pc + 1 if i == k else pc for i, pc in enumerate(pcs))
            if isinstance(operation, Load):
                value = _view_get(views[k], operation.location)
                name = f"{thread_names[k]}:{operation.dst}"
                next_registers = tuple(sorted({**dict(registers), name: value}.items()))
                step(next_pcs, views, channels, next_registers)
            elif isinstance(operation, Store):
                if operation.src is not None:
                    value = dict(registers).get(
                        f"{thread_names[k]}:{operation.src}", 0
                    )
                else:
                    assert operation.value is not None
                    value = operation.value
                new_views = list(views)
                new_views[k] = _view_set(views[k], operation.location, value)
                new_channels = list(channels)
                for reader in range(n):
                    if reader != k:
                        index = channel_index(k, reader)
                        new_channels[index] = channels[index] + (
                            (operation.location, value),
                        )
                step(next_pcs, tuple(new_views), tuple(new_channels), registers)
            else:
                # A full fence drains the thread's outgoing propagation
                # channels: it may only execute once every other thread
                # has received all of this thread's earlier stores.  (A
                # blocked fence never deadlocks — a non-empty outgoing
                # channel always has a deliverable propagation event.)
                if any(channels[channel_index(k, reader)] for reader in range(n)):
                    continue
                step(next_pcs, views, channels, registers)

        # Propagation events.
        for writer in range(n):
            for reader in range(n):
                index = channel_index(writer, reader)
                if not channels[index]:
                    continue
                (location, value), *rest = channels[index]
                new_views = list(views)
                new_views[reader] = _view_set(views[reader], location, value)
                new_channels = list(channels)
                new_channels[index] = tuple(rest)
                step(pcs, tuple(new_views), tuple(new_channels), registers)

    step(tuple([0] * n), initial_views, empty_channels, ())
    return outcomes


def enumerate_outcomes_non_atomic(
    programs: list[ThreadProgram],
    model: MemoryModel,
    initial_memory: dict[str, int] | None = None,
) -> set[Outcome]:
    """Reachable register outcomes with non-atomic stores.

    Combines the model's legal per-thread reorderings (as in the atomic
    enumerator) with asynchronous store propagation.  Final *memory* is
    ill-defined without a global coherence order, so only register
    outcomes are supported; pass litmus tests that observe registers.
    """
    if not programs:
        raise LitmusError("a litmus test needs at least one thread")
    per_thread = [legal_reorderings(program, model) for program in programs]
    names = [program.name for program in programs]
    outcomes: set[Outcome] = set()
    for choice in product(*per_thread):
        outcomes |= _execute_interleavings_non_atomic(
            list(choice), names, dict(initial_memory or {})
        )
    return outcomes
