"""Constrained random litmus-program families, seed-disciplined.

The paper analyses one canonical racy program; this module generalises
to *families*: :func:`generate_family` draws litmus tests from a
declarative :class:`FamilySpec` (thread count, memory operations per
thread, filler address pool, critical-pair spacing, fence placement
density), and :func:`sweep_family` re-estimates Thm 6.2/6.3-style
manifestation brackets for every family member against every model of
the zoo.

Every family member embeds a **critical cycle**: thread ``k`` stores 1
to its own flag and, exactly ``spacing`` filler operations later, loads
the *next* thread's flag — the ``threads``-way generalisation of store
buffering (SB).  The all-zero outcome of the critical loads is the
test's relaxed outcome: forbidden under SC (some store precedes the
last load in any interleaving), reachable once ST→LD reorders.  Filler
loads and stores draw from a disjoint address pool, so they perturb the
reordering space without touching the cycle's semantics; fences are
inserted between consecutive operations with probability
``fence_density``.

Generation is **seed-disciplined and worker-independent**: member ``i``
of family ``seed`` is a pure function of ``(spec, seed, i)``, drawn
from a dedicated Philox lane
(:class:`~repro.stats.rng.PhiloxSource` at path ``(GENERATOR_LANE,
i)``) — no generation state threads between members, so a family point
is exactly as cacheable and shardable as any other plan, and the same
``(spec, seed)`` yields bit-identical programs at any worker count
under either engine RNG plan.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

from ..core.memory_models import MemoryModel, model_digest
from ..errors import LitmusError
from ..runconfig import RunConfig
from ..sim.isa import Fence, Load, Operation, Store, ThreadProgram
from ..stats.intervals import wilson_interval
from ..stats.rng import PhiloxSource
from .enumerator import enumerate_outcomes
from .explore import explore_random, program_digest
from .tests import LitmusTest
from .zoo import ZOO_MODELS, get_zoo_model

__all__ = [
    "GENERATOR_LANE",
    "FamilySpec",
    "FamilySweepReport",
    "family_digests",
    "family_member",
    "generate_family",
    "sweep_family",
]

#: The Philox counter lane reserved for program generation — disjoint
#: from shard lanes (which are ``(shard, batch, ...)`` addressed by the
#: engine), so generated programs never correlate with trial streams.
GENERATOR_LANE = 0x4C49544D  # "LITM"

#: Small value pool for filler stores (0 is the implicit initial value).
_FILLER_VALUES = (1, 2, 3)


@dataclass(frozen=True)
class FamilySpec:
    """Declarative knobs of one program family.

    ``ops_per_thread`` counts *memory* operations (fences ride on top);
    each thread spends two of them on its critical store/load pair,
    separated by exactly ``spacing`` fillers, with the rest of the
    fillers placed around the pair.  Fillers draw addresses from a pool
    of ``addresses`` locations disjoint from the critical flags and are
    stores with probability ``store_fraction``.
    """

    threads: int = 2
    ops_per_thread: int = 4
    addresses: int = 2
    spacing: int = 0
    fence_density: float = 0.0
    store_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.threads < 2:
            raise LitmusError(
                f"a family needs at least 2 threads, got {self.threads}")
        if self.spacing < 0:
            raise LitmusError(f"spacing must be >= 0, got {self.spacing}")
        if self.ops_per_thread < self.spacing + 2:
            raise LitmusError(
                f"ops_per_thread must fit the critical pair plus spacing "
                f"(>= {self.spacing + 2}), got {self.ops_per_thread}")
        if self.addresses < 1:
            raise LitmusError(
                f"the filler address pool needs >= 1 location, "
                f"got {self.addresses}")
        for knob in ("fence_density", "store_fraction"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise LitmusError(
                    f"{knob} must be in [0, 1], got {value}")

    def label(self) -> str:
        """A compact, deterministic spec tag used in member names."""
        return (f"t{self.threads}o{self.ops_per_thread}a{self.addresses}"
                f"s{self.spacing}f{round(self.fence_density * 100)}"
                f"w{round(self.store_fraction * 100)}")

    def to_json_dict(self) -> dict[str, object]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}


def _member_source(seed: int | None, index: int) -> PhiloxSource:
    return PhiloxSource(0 if seed is None else seed,
                        (GENERATOR_LANE, index))


def _generate_thread(
    spec: FamilySpec, source: PhiloxSource, thread: int
) -> ThreadProgram:
    """One thread's program: the critical pair plus placed fillers."""
    fillers = spec.ops_per_thread - 2 - spec.spacing
    # Position of the critical store among the memory operations.
    prefix = source.uniform_int(0, fillers) if fillers else 0
    operations: list[Operation] = []
    register = 0

    def filler() -> Operation:
        nonlocal register
        location = f"f{source.uniform_int(0, spec.addresses - 1)}"
        if source.generator.random() < spec.store_fraction:
            value = _FILLER_VALUES[
                source.uniform_int(0, len(_FILLER_VALUES) - 1)]
            return Store(location, value=value)
        register += 1
        return Load(f"r{register}", location)

    for _ in range(prefix):
        operations.append(filler())
    operations.append(Store(f"flag{thread}", value=1))
    for _ in range(spec.spacing):
        operations.append(filler())
    operations.append(Load("rc", f"flag{(thread + 1) % spec.threads}"))
    for _ in range(fillers - prefix):
        operations.append(filler())

    if spec.fence_density > 0.0:
        fenced: list[Operation] = []
        for position, operation in enumerate(operations):
            if position and source.generator.random() < spec.fence_density:
                fenced.append(Fence())
            fenced.append(operation)
        operations = fenced
    return ThreadProgram(f"T{thread}", tuple(operations))


def family_member(
    spec: FamilySpec, seed: int | None, index: int
) -> LitmusTest:
    """Member ``index`` of the family — a pure function of its arguments.

    The relaxed outcome is the all-zero reading of the critical loads
    (every thread misses its successor's flag), the SB pattern's
    signature; ``allowed`` stays empty (families carry no literature
    expectations — the exploration engine *computes* reachability) and
    no memory locations are observed, so every zoo model, non-atomic
    flavors included, can run every member.
    """
    source = _member_source(seed, index)
    programs = tuple(
        _generate_thread(spec, source, thread)
        for thread in range(spec.threads)
    )
    relaxed = tuple(sorted(
        (f"T{thread}:rc", 0) for thread in range(spec.threads)))
    return LitmusTest(
        name=f"fam-{spec.label()}-s{0 if seed is None else seed}-{index}",
        description=(
            f"Generated family member {index} (seed "
            f"{0 if seed is None else seed}) of spec {spec.label()}: "
            f"{spec.threads}-thread SB-style critical cycle with "
            f"{spec.ops_per_thread} memory ops/thread."),
        programs=programs,
        relaxed_outcome=relaxed,
        allowed={},
    )


def generate_family(
    spec: FamilySpec, count: int, seed: int | None = 0
) -> tuple[LitmusTest, ...]:
    """``count`` family members, independently addressed by index."""
    if count < 1:
        raise LitmusError(f"a family needs >= 1 member, got {count}")
    return tuple(family_member(spec, seed, index) for index in range(count))


# ----------------------------------------------------------------------
# Family sweeps: manifestation brackets over members × the zoo
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FamilyPoint:
    """One (member, model) sweep point: the manifestation bracket.

    ``manifestation`` is the empirical probability that a sampled
    execution lands **outside** the member's SC outcome set — the
    family analogue of the paper's Pr[A] — with a Wilson score bracket
    at the sweep's confidence.
    """

    test: str
    member: int
    model: str
    model_digest: str
    trials: int
    weak_outcomes: int
    manifestation: float
    low: float
    high: float
    support: int
    sc_support: int

    def to_json_dict(self) -> dict[str, object]:
        return {
            "test": self.test,
            "member": self.member,
            "model": self.model,
            "model_digest": self.model_digest,
            "trials": self.trials,
            "weak_outcomes": self.weak_outcomes,
            "manifestation": self.manifestation,
            "low": self.low,
            "high": self.high,
            "support": self.support,
            "sc_support": self.sc_support,
        }


@dataclass(frozen=True)
class FamilySweepReport:
    """A full family sweep: members × models manifestation table."""

    spec: FamilySpec
    seed: int | None
    trials: int
    confidence: float
    points: tuple[FamilyPoint, ...]

    def rows(self) -> list[dict[str, object]]:
        """Table-ready rows (deterministic order: member, then model)."""
        return [
            {
                "member": point.member,
                "model": point.model,
                "manifestation": round(point.manifestation, 6),
                "low": round(point.low, 6),
                "high": round(point.high, 6),
                "support": point.support,
            }
            for point in self.points
        ]

    def point(self, member: int, model: str) -> FamilyPoint:
        for candidate in self.points:
            if candidate.member == member and candidate.model == model:
                return candidate
        raise KeyError(f"no sweep point ({member!r}, {model!r})")

    def to_json_dict(self) -> dict[str, object]:
        """A deterministic JSON view (insensitive to cache state)."""
        return {
            "spec": self.spec.to_json_dict(),
            "seed": self.seed,
            "trials": self.trials,
            "confidence": self.confidence,
            "points": [point.to_json_dict() for point in self.points],
        }


def sweep_family(
    spec: FamilySpec,
    models: Iterable[MemoryModel | str] | None = None,
    *,
    count: int = 4,
    trials: int = 10_000,
    seed: int | None = 0,
    confidence: float = 0.99,
    config: RunConfig | None = None,
) -> FamilySweepReport:
    """Estimate manifestation brackets over ``members × models``.

    For each generated member, the SC outcome set is enumerated exactly
    (the paper's store-atomic baseline); each model's sampled frequency
    table (:func:`~repro.litmus.explore.explore_random`, riding the full
    engine: sharding, caching, checkpoints, manifests) is then split
    into SC-consistent and weak mass, and the weak fraction gets a
    Wilson bracket.  Results are bit-identical for fixed
    ``(spec, seed, count, trials, shards, rng_plan)`` at any worker
    count and over any transport — generation and sampling are both
    counter-addressed.
    """
    if models is None:
        resolved = list(ZOO_MODELS)
    else:
        resolved = [get_zoo_model(model) if isinstance(model, str) else model
                    for model in models]
    if not resolved:
        raise LitmusError("a family sweep needs at least one model")
    tests = generate_family(spec, count, seed)

    points = []
    for index, test in enumerate(tests):
        sc_outcomes = frozenset(enumerate_outcomes(
            list(test.programs), get_zoo_model("SC"),
            dict(test.initial_memory), test.observed_locations,
        ))
        for model in resolved:
            frequencies = explore_random(
                test, model, trials, seed=seed, config=config)
            weak = sum(count_ for outcome, count_ in frequencies.counts
                       if outcome not in sc_outcomes)
            bracket = wilson_interval(weak, trials, confidence=confidence)
            points.append(FamilyPoint(
                test=test.name,
                member=index,
                model=model.name,
                model_digest=model_digest(model),
                trials=trials,
                weak_outcomes=weak,
                manifestation=weak / trials,
                low=bracket.low,
                high=bracket.high,
                support=len(frequencies.support),
                sc_support=len(sc_outcomes),
            ))
    return FamilySweepReport(
        spec=spec, seed=seed, trials=trials, confidence=confidence,
        points=tuple(points),
    )


def family_digests(tests: Iterable[LitmusTest]) -> list[str]:
    """The program digests of a generated family, in member order.

    Convenience for bit-identity checks: equal specs and seeds must
    yield equal digest lists whatever process generated them.
    """
    return [program_digest(test) for test in tests]
