"""The classic litmus tests, with literature expectations per memory model.

Each test names a *relaxed outcome* — the final state that distinguishes
weak models from strong ones — and records, per paper model, whether the
architecture literature allows it (under the paper's store-atomic,
reordering-only semantics of §2.1):

========  ==========================================  ====  ====  ====  ====
Test      Relaxed outcome                             SC    TSO   PSO   WO
========  ==========================================  ====  ====  ====  ====
SB        r1 = r2 = 0 (both loads before stores)       ✗     ✓     ✓     ✓
MP        r1 = 1, r2 = 0 (stores or loads reorder)     ✗     ✗     ✓     ✓
LB        r1 = r2 = 1 (loads after later stores)       ✗     ✗     ✗     ✓
CoRR      r1 = 1, r2 = 0 (same-address loads swap)     ✗     ✗     ✗     ✗
2+2W      x = 1, y = 1 (write pairs fully reorder)     ✗     ✗     ✓     ✓
IRIW      readers disagree on the write order          ✗     ✗     ✗     ✓*
S         r1 = 1 yet x keeps the early value           ✗     ✗     ✓     ✓
R         r1 = 0 yet y keeps the late value            ✗     ✓     ✓     ✓
WRC       causality chain broken at a third thread     ✗     ✗     ✗     ✓
SB+FF     SB with fences in both threads               ✗     ✗     ✗     ✗
SB+F      SB fenced in ONE thread (the pitfall)        ✗     ✓     ✓     ✓
MP+FF     MP with fences on both edges                 ✗     ✗     ✗     ✗
========  ==========================================  ====  ====  ====  ====

(*) IRIW under WO: with store-atomic memory, disagreement requires the
reader threads' own LD/LD pairs to reorder — which WO's LD→LD relaxation
provides.  (On real non-store-atomic machines IRIW is more subtle; the
paper, and hence this library, assumes store atomicity.)

CoRR is a *negative control*: same-address operations never reorder in any
model, so the exotic outcome must be forbidden everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.isa import Fence, Load, Store, ThreadProgram
from .enumerator import Outcome

__all__ = ["LitmusTest", "ALL_TESTS", "get_test"]


@dataclass(frozen=True)
class LitmusTest:
    """A litmus test plus its distinguished relaxed outcome.

    ``relaxed_outcome`` uses the enumerator's key convention:
    ``"T<k>:<register>"`` for registers, ``"mem:<location>"`` for observed
    memory locations.  ``allowed`` maps paper-model names to whether the
    relaxed outcome is reachable.
    """

    name: str
    description: str
    programs: tuple[ThreadProgram, ...]
    relaxed_outcome: Outcome
    allowed: dict[str, bool]
    observed_locations: tuple[str, ...] = ()
    initial_memory: dict[str, int] = field(default_factory=dict)


def _outcome(*entries: tuple[str, int]) -> Outcome:
    return tuple(sorted(entries))


STORE_BUFFERING = LitmusTest(
    name="SB",
    description="Store buffering: each thread stores then loads the other's flag.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Load("r1", "y"))),
        ThreadProgram("T1", (Store("y", value=1), Load("r2", "x"))),
    ),
    relaxed_outcome=_outcome(("T0:r1", 0), ("T1:r2", 0)),
    allowed={"SC": False, "TSO": True, "PSO": True, "WO": True},
)

MESSAGE_PASSING = LitmusTest(
    name="MP",
    description="Message passing: data store then flag store vs flag load then data load.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Store("y", value=1))),
        ThreadProgram("T1", (Load("r1", "y"), Load("r2", "x"))),
    ),
    relaxed_outcome=_outcome(("T1:r1", 1), ("T1:r2", 0)),
    allowed={"SC": False, "TSO": False, "PSO": True, "WO": True},
)

LOAD_BUFFERING = LitmusTest(
    name="LB",
    description="Load buffering: each thread loads the other's flag then stores its own.",
    programs=(
        ThreadProgram("T0", (Load("r1", "x"), Store("y", value=1))),
        ThreadProgram("T1", (Load("r2", "y"), Store("x", value=1))),
    ),
    relaxed_outcome=_outcome(("T0:r1", 1), ("T1:r2", 1)),
    allowed={"SC": False, "TSO": False, "PSO": False, "WO": True},
)

COHERENCE_RR = LitmusTest(
    name="CoRR",
    description="Coherence of same-address reads: two loads of one location never swap.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1),)),
        ThreadProgram("T1", (Load("r1", "x"), Load("r2", "x"))),
    ),
    relaxed_outcome=_outcome(("T1:r1", 1), ("T1:r2", 0)),
    allowed={"SC": False, "TSO": False, "PSO": False, "WO": False},
)

TWO_PLUS_TWO_W = LitmusTest(
    name="2+2W",
    description="Write reordering: both threads write both locations in opposite orders.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Store("y", value=2))),
        ThreadProgram("T1", (Store("y", value=1), Store("x", value=2))),
    ),
    # Both *first* writes land last: x and y both end at 1.
    relaxed_outcome=_outcome(("mem:x", 1), ("mem:y", 1)),
    allowed={"SC": False, "TSO": False, "PSO": True, "WO": True},
    observed_locations=("x", "y"),
)

IRIW = LitmusTest(
    name="IRIW",
    description="Independent reads of independent writes: readers disagree on order.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1),)),
        ThreadProgram("T1", (Store("y", value=1),)),
        ThreadProgram("T2", (Load("r1", "x"), Load("r2", "y"))),
        ThreadProgram("T3", (Load("r3", "y"), Load("r4", "x"))),
    ),
    relaxed_outcome=_outcome(("T2:r1", 1), ("T2:r2", 0), ("T3:r3", 1), ("T3:r4", 0)),
    allowed={"SC": False, "TSO": False, "PSO": False, "WO": True},
)

S_SHAPE = LitmusTest(
    name="S",
    description="S: write pair vs read-then-overwrite on the first location.",
    programs=(
        ThreadProgram("T0", (Store("x", value=2), Store("y", value=1))),
        ThreadProgram("T1", (Load("r1", "y"), Store("x", value=1))),
    ),
    # r1 observed T0's flag, yet T0's data store lands after T1's overwrite:
    # needs T0's ST/ST pair to reorder.
    relaxed_outcome=_outcome(("T1:r1", 1), ("mem:x", 2)),
    allowed={"SC": False, "TSO": False, "PSO": True, "WO": True},
    observed_locations=("x",),
)

R_SHAPE = LitmusTest(
    name="R",
    description="R: write pair vs overwrite-then-read on the first location.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Store("y", value=1))),
        ThreadProgram("T1", (Store("y", value=2), Load("r1", "x"))),
    ),
    # T1's load misses T0's x although T1's y-write won the final value:
    # needs T1's ST/LD pair to reorder.
    relaxed_outcome=_outcome(("T1:r1", 0), ("mem:y", 2)),
    allowed={"SC": False, "TSO": True, "PSO": True, "WO": True},
    observed_locations=("y",),
)

WRC = LitmusTest(
    name="WRC",
    description="Write-to-read causality: a reader republishes, a third thread disagrees.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1),)),
        ThreadProgram("T1", (Load("r1", "x"), Store("y", value=1))),
        ThreadProgram("T2", (Load("r2", "y"), Load("r3", "x"))),
    ),
    # T1 saw x and published y; T2 saw y but not x: needs T1's LD/ST or
    # T2's LD/LD to reorder (store-atomic memory keeps causality otherwise).
    relaxed_outcome=_outcome(("T1:r1", 1), ("T2:r2", 1), ("T2:r3", 0)),
    allowed={"SC": False, "TSO": False, "PSO": False, "WO": True},
)

STORE_BUFFERING_FENCED = LitmusTest(
    name="SB+FF",
    description="Store buffering with a full fence in each thread: restored.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Fence(), Load("r1", "y"))),
        ThreadProgram("T1", (Store("y", value=1), Fence(), Load("r2", "x"))),
    ),
    relaxed_outcome=_outcome(("T0:r1", 0), ("T1:r2", 0)),
    allowed={"SC": False, "TSO": False, "PSO": False, "WO": False},
)

STORE_BUFFERING_HALF_FENCED = LitmusTest(
    name="SB+F",
    description=(
        "Store buffering fenced in ONE thread only: still relaxed — the "
        "other thread's reordering alone suffices (the classic pitfall)."
    ),
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Fence(), Load("r1", "y"))),
        ThreadProgram("T1", (Store("y", value=1), Load("r2", "x"))),
    ),
    relaxed_outcome=_outcome(("T0:r1", 0), ("T1:r2", 0)),
    allowed={"SC": False, "TSO": True, "PSO": True, "WO": True},
)

MESSAGE_PASSING_FENCED = LitmusTest(
    name="MP+FF",
    description="Message passing with fences around both critical edges.",
    programs=(
        ThreadProgram("T0", (Store("x", value=1), Fence(), Store("y", value=1))),
        ThreadProgram("T1", (Load("r1", "y"), Fence(), Load("r2", "x"))),
    ),
    relaxed_outcome=_outcome(("T1:r1", 1), ("T1:r2", 0)),
    allowed={"SC": False, "TSO": False, "PSO": False, "WO": False},
)

ALL_TESTS: tuple[LitmusTest, ...] = (
    STORE_BUFFERING,
    MESSAGE_PASSING,
    LOAD_BUFFERING,
    COHERENCE_RR,
    TWO_PLUS_TWO_W,
    IRIW,
    S_SHAPE,
    R_SHAPE,
    WRC,
    STORE_BUFFERING_FENCED,
    STORE_BUFFERING_HALF_FENCED,
    MESSAGE_PASSING_FENCED,
)

_REGISTRY = {test.name.upper(): test for test in ALL_TESTS}


def get_test(name: str) -> LitmusTest:
    """Look up a litmus test by name, case-insensitively (``"SB"``, ``"CoRR"``, …)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(test.name for test in ALL_TESTS))
        raise KeyError(f"unknown litmus test {name!r}; known: {known}") from None
