"""The memory-model zoo: models beyond the paper's Table 1 four.

The paper's algebra (a :class:`~repro.core.memory_models.MemoryModel` is
a relaxation set over the four ordered LD/ST pairs) covers far more than
SC/TSO/PSO/WO, and the two orthogonal executors — the reordering
enumerator (:mod:`repro.litmus.enumerator`) and the non-atomic
propagation executor (:mod:`repro.litmus.atomicity`) — cover more than
the algebra alone.  This module collects the extra inhabitants:

* :data:`PSO_WB` — PSO stated *operationally*, dejafu-style: one FIFO
  write buffer **per location** per thread.  Buffering a store past
  later operations yields exactly the ST→LD and ST→ST relaxations, so
  the algebraic digest is PSO's and cached outcome sets are shared; the
  operational executor (:func:`enumerate_outcomes_buffered`) is kept as
  an independent second opinion and asserted equivalent to the algebraic
  enumeration in the test suite.
* :data:`SC_NMCA` / :data:`WO_NMCA` — non-multicopy-atomic (ARM/POWER
  flavored) models: SC or WO ordering composed with asynchronous
  per-(writer, reader) store propagation, executed by
  :func:`~repro.litmus.atomicity.enumerate_outcomes_non_atomic` (the
  exploration engine dispatches on ``model.atomicity``).

:func:`get_zoo_model` resolves zoo names and falls back to the paper
registry, so every CLI/service surface that accepts ``"TSO"`` accepts
``"PSO-WB"`` too.
"""

from __future__ import annotations

from ..core.memory_models import (
    ALL_PAIRS,
    LD,
    PAPER_MODELS,
    ST,
    MemoryModel,
    get_model,
)
from ..errors import LitmusError, ModelDefinitionError
from ..sim.isa import Fence, Load, Operation, Store, ThreadProgram
from .enumerator import Outcome

__all__ = [
    "PSO_WB",
    "SC_NMCA",
    "WO_NMCA",
    "ZOO_MODELS",
    "enumerate_outcomes_buffered",
    "get_zoo_model",
]


PSO_WB = MemoryModel(
    "PSO-WB",
    relaxed_pairs=[(ST, LD), (ST, ST)],
    description=(
        "Partial Store Order, operationally: one FIFO write buffer per "
        "location per thread (dejafu's TotalStoreOrder=False). Same "
        "semantics — and same model digest, hence same cache entries — "
        "as the algebraic PSO."
    ),
)

SC_NMCA = MemoryModel(
    "SC-NMCA",
    relaxed_pairs=(),
    description=(
        "SC ordering without multi-copy atomicity: no instruction "
        "reordering, but stores propagate to other threads "
        "asynchronously over per-(writer, reader) FIFO channels."
    ),
    atomicity="non_atomic",
)

WO_NMCA = MemoryModel(
    "WO-NMCA",
    relaxed_pairs=list(ALL_PAIRS),
    description=(
        "Weak Ordering without multi-copy atomicity (ARM/POWER "
        "flavored): full reordering composed with asynchronous store "
        "propagation — the weakest model in the zoo."
    ),
    atomicity="non_atomic",
)

#: The full zoo, strongest first: the paper four plus the extensions.
ZOO_MODELS: tuple[MemoryModel, ...] = PAPER_MODELS + (PSO_WB, SC_NMCA, WO_NMCA)

_ZOO_REGISTRY = {model.name.upper(): model for model in ZOO_MODELS}


def get_zoo_model(name: str) -> MemoryModel:
    """Look up a model by name across the zoo *and* the paper registry.

    Zoo names (``"PSO-WB"``, ``"SC-NMCA"``, ``"WO-NMCA"``) resolve here;
    anything else falls through to
    :func:`~repro.core.memory_models.get_model` with its aliases — so
    this is a strict superset of the registry lookup.
    """
    key = name.strip().upper()
    if key in _ZOO_REGISTRY:
        return _ZOO_REGISTRY[key]
    try:
        return get_model(name)
    except ModelDefinitionError:
        known = ", ".join(sorted(_ZOO_REGISTRY))
        raise ModelDefinitionError(
            f"unknown memory model {name!r}; known: {known}") from None


# ----------------------------------------------------------------------
# The per-location write-buffer executor (operational PSO)
# ----------------------------------------------------------------------

#: One thread's write buffers: sorted (location, pending values) pairs.
_Buffers = tuple[tuple[str, tuple[int, ...]], ...]


def _buffer_append(buffers: _Buffers, location: str, value: int) -> _Buffers:
    entries = dict(buffers)
    entries[location] = entries.get(location, ()) + (value,)
    return tuple(sorted(entries.items()))


def _buffer_pop(buffers: _Buffers, location: str) -> tuple[int, _Buffers]:
    entries = dict(buffers)
    value, *rest = entries[location]
    if rest:
        entries[location] = tuple(rest)
    else:
        del entries[location]
    return value, tuple(sorted(entries.items()))


def enumerate_outcomes_buffered(
    programs: list[ThreadProgram],
    initial_memory: dict[str, int] | None = None,
    observed_locations: tuple[str, ...] = (),
) -> set[Outcome]:
    """Exact reachable outcomes under per-location write buffers (PSO).

    Operational semantics, dejafu-style: a store appends to its thread's
    FIFO buffer *for that location*; a flush event moves some buffer's
    oldest entry to shared memory (buffers for distinct locations drain
    in any order — the ST→ST relaxation); a load forwards the newest
    value from the thread's own buffer, falling back to memory (the
    ST→LD relaxation plus store forwarding); a full fence blocks until
    the thread's buffers are empty.  Memory stays multi-copy atomic, so
    final memory is well-defined and ``observed_locations`` is
    supported, exactly as in the algebraic enumerator.
    """
    if not programs:
        raise LitmusError("a litmus test needs at least one thread")
    threads: list[tuple[Operation, ...]] = [
        program.operations for program in programs]
    names = [program.name for program in programs]
    n = len(threads)
    empty_buffers: tuple[_Buffers, ...] = tuple(() for _ in range(n))
    initial: tuple[tuple[str, int], ...] = tuple(
        sorted((initial_memory or {}).items()))

    outcomes: set[Outcome] = set()
    seen: set[tuple] = set()

    def record(memory, registers) -> None:
        entries = list(registers)
        lookup = dict(memory)
        entries += [(f"mem:{location}", lookup.get(location, 0))
                    for location in observed_locations]
        outcomes.add(tuple(sorted(entries)))

    def step(pcs, memory, buffers, registers) -> None:
        key = (pcs, memory, buffers, registers)
        if key in seen:
            return
        seen.add(key)
        finished = all(pcs[k] >= len(threads[k]) for k in range(n))
        if finished and not any(buffers):
            record(memory, registers)
            return

        # Instruction steps.
        for k in range(n):
            if pcs[k] >= len(threads[k]):
                continue
            operation = threads[k][pcs[k]]
            next_pcs = tuple(pc + 1 if i == k else pc
                             for i, pc in enumerate(pcs))
            if isinstance(operation, Load):
                pending = dict(buffers[k]).get(operation.location)
                if pending:
                    value = pending[-1]  # forward the newest own store
                else:
                    value = dict(memory).get(operation.location, 0)
                name = f"{names[k]}:{operation.dst}"
                next_registers = tuple(sorted(
                    {**dict(registers), name: value}.items()))
                step(next_pcs, memory, buffers, next_registers)
            elif isinstance(operation, Store):
                if operation.src is not None:
                    value = dict(registers).get(
                        f"{names[k]}:{operation.src}", 0)
                else:
                    assert operation.value is not None
                    value = operation.value
                new_buffers = list(buffers)
                new_buffers[k] = _buffer_append(
                    buffers[k], operation.location, value)
                step(next_pcs, memory, tuple(new_buffers), registers)
            else:
                assert isinstance(operation, Fence)
                if buffers[k]:
                    continue  # blocked until this thread's buffers drain
                step(next_pcs, memory, buffers, registers)

        # Flush events: any buffer's oldest entry commits to memory.
        for k in range(n):
            for location, _ in buffers[k]:
                value, new_thread_buffers = _buffer_pop(buffers[k], location)
                new_buffers = list(buffers)
                new_buffers[k] = new_thread_buffers
                new_memory = tuple(sorted(
                    {**dict(memory), location: value}.items()))
                step(pcs, new_memory, tuple(new_buffers), registers)

    step(tuple([0] * n), initial, empty_buffers, ())
    return outcomes
