"""Render a settling trace as text — the reproduction of Figure 1.

Figure 1 of the paper shows the program order after each settling round
under TSO, with the currently-settling instruction highlighted and the
critical pair in black boxes.  :func:`render_settling_trace` produces the
same picture as a character grid: one column per round (the state *after*
that round), one row per program position, ``LD``/``ST`` cells, ``*``
marking the critical pair and ``[...]`` marking the instruction that
settled in that round.
"""

from __future__ import annotations

from ..core.settling import SettlingResult

__all__ = ["render_settling_trace", "describe_settling"]


def render_settling_trace(result: SettlingResult, max_rounds: int | None = None) -> str:
    """Draw the per-round program orders of a traced settling run.

    Requires the result to have been produced with ``record_trace=True``;
    raises otherwise.  ``max_rounds`` limits the rendered columns (the
    final rounds are kept — they contain the critical pair's settling).
    """
    trace = result.trace
    if trace is None:
        raise ValueError("settling result carries no trace; settle with record_trace=True")
    program = result.program
    steps = list(trace)
    if max_rounds is not None and len(steps) > max_rounds:
        steps = steps[-max_rounds:]

    critical = {program.length - 1, program.length}

    def cell(index: int, settled: bool) -> str:
        mnemonic = program.type_of(index).mnemonic
        marker = "*" if index in critical else " "
        text = f"{mnemonic}{marker}"
        return f"[{text}]" if settled else f" {text} "

    height = len(trace)  # final program length = total rounds
    columns: list[list[str]] = []
    headers: list[str] = []
    for step in steps:
        headers.append(f"r{step.round_index}")
        column = [cell(index, index == step.round_index) for index in step.order]
        column += ["     "] * (height - len(column))
        columns.append(column)

    width = max(len(text) for column in columns for text in column)
    lines = ["  ".join(header.ljust(width) for header in headers).rstrip()]
    for row in range(height):
        lines.append("  ".join(column[row].ljust(width) for column in columns).rstrip())
    window = result.window_indices()
    lines.append(
        f"critical window: positions {window[0]}..{window[-1]} "
        f"(growth gamma = {result.window_growth})"
    )
    return "\n".join(lines)


def describe_settling(result: SettlingResult) -> str:
    """One-line summary: final order as mnemonics with the window bracketed."""
    pieces = []
    window = set(result.window_indices())
    for position, index in enumerate(result.order, start=1):
        mnemonic = result.program.type_of(index).mnemonic
        if result.program.instruction(index).is_critical:
            mnemonic += "*"
        pieces.append(f"<{mnemonic}>" if position in window else mnemonic)
    return " ".join(pieces)
