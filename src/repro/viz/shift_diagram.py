"""Render a shift-process instantiation as text — the reproduction of Figure 2.

Figure 2 of the paper draws three segments of lengths (3, 2, 5) shifted to
(8, 0, 2) on a vertical number line, notes that this particular outcome has
probability ``2^{-8-1} · 2^{-0-1} · 2^{-2-1} = 2^{-13}``, and observes the
disjointness event holds.  :func:`render_shift_diagram` draws the same
diagram for any shifts/lengths and reports the outcome probability and the
disjointness verdict.
"""

from __future__ import annotations

import math

from ..core.shift import segments_disjoint

__all__ = ["render_shift_diagram", "shift_outcome_probability"]


def shift_outcome_probability(shifts: list[int], beta: float = 0.5) -> float:
    """Probability of one exact shift outcome: ``Π (1-β) β^{s_i}``.

    Figure 2's caption: shifts (8, 0, 2) at β = 1/2 give ``2^{-13}``.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    if any(shift < 0 for shift in shifts):
        raise ValueError("shifts must be non-negative")
    return math.prod((1.0 - beta) * beta**shift for shift in shifts)


def render_shift_diagram(
    shifts: list[int], lengths: list[int], beta: float = 0.5
) -> str:
    """Draw shifted closed segments ``[s_i, s_i + γ_i]`` on a number line.

    One column per segment, rows from 0 (bottom of the diagram, printed
    last) upward; ``#`` marks covered integer points; the footer reports
    the outcome probability and the disjointness verdict under both the
    theorem (closed) convention and Figure 2's half-open reading.
    """
    if len(shifts) != len(lengths):
        raise ValueError("shifts and lengths must have equal length")
    if not shifts:
        raise ValueError("need at least one segment")
    if any(length < 0 for length in lengths):
        raise ValueError("segment lengths must be non-negative")
    top = max(shift + length for shift, length in zip(shifts, lengths))
    width = max(len(f"g{i + 1}") for i in range(len(shifts)))

    header = "     " + " ".join(f"g{i + 1}".center(width) for i in range(len(shifts)))
    lines = [header]
    for level in range(top, -1, -1):
        cells = []
        for shift, length in zip(shifts, lengths):
            covered = shift <= level <= shift + length
            cells.append(("#" * width) if covered else ("." * width))
        lines.append(f"{level:>4} " + " ".join(cells))

    probability = shift_outcome_probability(list(shifts), beta)
    exponent = math.log(probability, beta) if 0 < beta < 1 else float("nan")
    closed = segments_disjoint(shifts, lengths, closed=True)
    half_open = segments_disjoint(shifts, lengths, closed=False)
    lines.append(
        f"outcome probability = {probability:.3e}"
        + (f" (= beta^{exponent:.0f})" if math.isfinite(exponent) else "")
    )
    lines.append(
        f"disjointness event A: {'yes' if closed else 'no'} (closed/theorem "
        f"convention), {'yes' if half_open else 'no'} (half-open/Figure-2 reading)"
    )
    return "\n".join(lines)
