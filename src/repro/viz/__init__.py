"""Text renderings of the paper's process figures (Figures 1 and 2)."""

from .settling_trace import describe_settling, render_settling_trace
from .shift_diagram import render_shift_diagram, shift_outcome_probability

__all__ = [
    "describe_settling",
    "render_settling_trace",
    "render_shift_diagram",
    "shift_outcome_probability",
]
