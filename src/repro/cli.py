"""Command-line interface: explore the reproduction without writing code.

Usage (``python -m repro <command>`` or the installed ``repro`` script):

.. code-block:: console

   $ python -m repro table1                 # the relaxation matrix
   $ python -m repro window --model TSO     # Theorem 4.1 laws
   $ python -m repro thm62 --trials 100000  # the headline two-thread table
   $ python -m repro scaling --max-n 64     # Theorem 6.3 curves
   $ python -m repro litmus --test SB       # litmus verdicts
   $ python -m repro machine --model WO     # the canonical bug on the machine
   $ python -m repro fences --model TSO     # the §7 fence sweep
   $ python -m repro fleet SC WO TSO        # heterogeneous fleets
   $ python -m repro experiments            # the paper-artifact registry
   $ python -m repro serve --port 8642      # the estimation job server

Every command prints plain-text tables from :mod:`repro.reporting`.

The global ``--workers N`` flag fans Monte-Carlo trial budgets and sweep
grids out over ``N`` worker processes via :mod:`repro.stats.parallel`.
The statistical identity of a run is ``(seed, shards)``: workers change
wall-clock time, never numbers, and ``--shards`` left unset defaults to
the fixed :data:`~repro.stats.parallel.DEFAULT_SHARDS` whenever
``--workers`` is above 1 (never the worker count).  ``--retries`` /
``--shard-timeout`` / ``--checkpoint`` harden long runs: failed shards
retry with backoff, stuck shards time out, and completed shards journal
to a resumable checkpoint file — an interrupted run re-executes only the
missing shards and merges to the identical result.

``--manifest FILE`` / ``--trace FILE`` / ``--progress`` observe a run:
a validated JSON run manifest (per-shard durations, retry ledger, merged
result), a JSONL span trace, and a live stderr progress line with ETA —
all read-only with respect to the numbers (``docs/OBSERVABILITY.md``).

``--cache DIR`` (or ``--cache auto`` for the default store under
``~/.cache/repro``) keeps completed shards in a content-addressed result
cache keyed by the v2 checkpoint key — re-runs and overlapping sweep
points fetch their shards instead of recomputing them, with bit-identical
results (``docs/CACHING.md``).  ``repro cache {stats,clear,verify}``
inspects and manages the store.

``--backend {scalar,vectorized,fused}`` selects the simulation kernel
(``docs/KERNELS.md``): whole-array NumPy batches, the draw-by-draw
reference loop, or (joined-model commands only) the single-pass fused
chain.  The backends are statistically equivalent; left unset, each
command keeps its native default (``thm62``: vectorized, ``machine``:
scalar).  ``--rng-plan {spawn,philox}`` selects the shard-stream
derivation: ``spawn`` (default) reproduces every published number,
``philox`` is the counter-addressed fast path — the two draw different
streams and are never silently mixed (``docs/API.md``).  ``--transport
{auto,pickle,shm}`` selects the shard result channel (shared-memory rows
vs pickling; a scheduling concern — numbers are identical either way).

Every global engine flag is parsed into **one**
:class:`repro.runconfig.RunConfig` (see ``docs/API.md``, "RunConfig")
built by :meth:`RunConfig.from_args` in :func:`main`; each subcommand
handler forwards that single record, so no handler can silently drop a
knob again.  On the engine-aware subcommands (``thm62``, ``machine``,
``scaling``, ``critical-section``) every engine flag may be placed
before or after the subcommand:

.. code-block:: console

   $ python -m repro --workers 4 machine --model TSO --trials 20000
   $ python -m repro --workers 4 --retries 2 --checkpoint run.jsonl \\
         thm62 --trials 1000000
   $ python -m repro thm62 --trials 20000 --workers 2 --manifest m.json
   $ python -m repro machine --model TSO --progress --trace spans.jsonl
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from .analysis import (
    critical_section_sweep,
    exponent_gap_curve,
    thread_sweep,
    window_pmf_table,
)
from .core import (
    PAPER_MODELS,
    WO,
    multi_bug_gap_curve,
    estimate_non_manifestation,
    fenced_non_manifestation,
    get_model,
    heterogeneous_non_manifestation,
    non_manifestation_probability,
    table1_rows,
    window_distribution,
)
from .litmus import ALL_TESTS, check_all, check_test, get_test
from .reporting import EXPERIMENTS, render_table
from .runconfig import RunConfig
from .sim import run_canonical_bug

__all__ = ["main", "build_parser"]


def _cmd_table1(args: argparse.Namespace) -> None:
    print(render_table(table1_rows(), title="Table 1: relaxed ordered pairs"))


def _cmd_window(args: argparse.Namespace) -> None:
    if args.model:
        model = get_model(args.model)
        dist = window_distribution(model, args.store_probability)
        rows = [
            {"gamma": gamma, f"Pr[B_gamma] {model.name}": dist.pmf(gamma)}
            for gamma in range(args.max_gamma + 1)
        ]
        title = f"Theorem 4.1 window law for {model.name}"
    else:
        rows = window_pmf_table(range(args.max_gamma + 1))
        title = "Theorem 4.1 window laws"
    print(render_table(rows, precision=args.precision, title=title))


def _cmd_thm62(args: argparse.Namespace) -> None:
    rows = []
    for model in PAPER_MODELS:
        exact = non_manifestation_probability(model).value
        row: dict[str, object] = {
            "model": model.name,
            "Pr[A]": exact,
            "Pr[bug]": 1.0 - exact,
        }
        if args.trials:
            empirical = estimate_non_manifestation(
                model, 2, args.trials, seed=args.seed,
                config=args.run_config,
            )
            row["monte carlo"] = empirical.estimate
            row["agrees"] = empirical.agrees_with(exact)
        rows.append(row)
    print(render_table(rows, precision=args.precision,
                       title="Theorem 6.2: two racing threads"))


def _cmd_scaling(args: argparse.Namespace) -> None:
    counts = [n for n in (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)
              if n <= args.max_n]
    print(render_table(thread_sweep(counts, config=args.run_config),
                       precision=3,
                       title="Theorem 6.3: ln Pr[A] per model"))
    print()
    print(render_table(exponent_gap_curve(counts, weak_model=WO), precision=4,
                       title="SC vs WO: the vanishing relative gap"))


def _cmd_litmus(args: argparse.Namespace) -> None:
    if args.test:
        test = get_test(args.test)
        rows = []
        for model in PAPER_MODELS:
            verdict = check_test(test, model)
            rows.append(
                {
                    "model": model.name,
                    "relaxed outcome": "allowed" if verdict.relaxed_reachable else "forbidden",
                    "reachable outcomes": len(verdict.outcomes),
                    "matches literature": verdict.matches_literature,
                }
            )
        print(f"{test.name}: {test.description}")
        print(render_table(rows))
        return
    rows = []
    for test in ALL_TESTS:
        row: dict[str, object] = {"test": test.name}
        for verdict in check_all(tests=[test]):
            row[verdict.model.name] = (
                "allowed" if verdict.relaxed_reachable else "forbidden"
            )
        rows.append(row)
    print(render_table(rows, title="Litmus verdicts (relaxed outcome per model)"))


def _cmd_litmus_explore(args: argparse.Namespace) -> None:
    """Sharded, cached litmus exploration (docs/LITMUS.md).

    Exhaustive mode enumerates exact outcome sets over the test×model
    grid (content-addressed in the shard cache); random mode estimates
    outcome frequencies with seed-disciplined sampling and cross-checks
    them against the enumerated sets.  Cache tallies go to stderr so
    cold and warm runs print byte-identical stdout/--json output.
    """
    import json
    import sys

    from .litmus import (
        check_convergence,
        explore_exhaustive,
        explore_random,
        get_zoo_model,
        robustness_report,
    )

    tests = ([get_test(name) for name in args.tests]
             if args.tests else list(ALL_TESTS))
    models = ([get_zoo_model(name) for name in args.models]
              if args.models else list(PAPER_MODELS))
    config = args.run_config
    payload: dict[str, object] = {}

    exploration = None
    if args.mode in ("exhaustive", "both"):
        exploration = explore_exhaustive(tests, models, config=config)
        rows = []
        for test in tests:
            row: dict[str, object] = {"test": test.name}
            for model in models:
                row[model.name] = len(
                    exploration.outcome_set(test.name, model.name))
            rows.append(row)
        print(render_table(
            rows, title="Exhaustive exploration (reachable outcomes per model)"))
        if exploration.cache_hits or exploration.cache_stored:
            print(f"cache: {exploration.cache_hits} hits, "
                  f"{exploration.cache_misses} misses, "
                  f"{exploration.cache_stored} stored", file=sys.stderr)
        payload.update(exploration.to_json_dict())

    if args.mode in ("random", "both"):
        rows = []
        random_payload: dict[str, dict[str, object]] = {}
        for test in tests:
            for model in models:
                table = explore_random(test, model, args.trials,
                                       seed=args.seed, config=config)
                enumerated = (exploration.outcome_set(test.name, model.name)
                              if exploration is not None else None)
                report = check_convergence(table, enumerated,
                                           test=test, model=model)
                rows.append({
                    "test": test.name,
                    "model": model.name,
                    "sampled outcomes": len(table.support),
                    "enumerated": len(report.enumerated),
                    "coverage": report.coverage,
                    "contained": report.contained,
                })
                entry = table.to_json_dict()
                entry["coverage"] = report.coverage
                entry["contained"] = report.contained
                random_payload.setdefault(test.name, {})[model.name] = entry
        print(render_table(
            rows, precision=3,
            title=f"Pseudorandom exploration ({args.trials} trials, "
                  f"seed {args.seed})"))
        payload["random"] = random_payload

    if args.robustness:
        robustness = robustness_report(
            tests, [model for model in models if model.name != "SC"],
            exploration=(exploration
                         if exploration is not None
                         and any(model.name == "SC" for model in models)
                         else None),
            config=config)
        print(render_table(robustness.rows(),
                           title="Robustness against weak models "
                                 "(outcome-set diff vs SC)"))
        payload["robustness"] = robustness.to_json_dict()

    if args.json_path:
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.json_path == "-":
            sys.stdout.write(text)
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(text)


def _cmd_litmus_generate(args: argparse.Namespace) -> None:
    """Generated program families swept across the model zoo (docs/LITMUS.md).

    Draws a seed-disciplined family from the declarative spec knobs and
    re-estimates the manifestation bracket (sampled probability mass
    outside the enumerated SC set, Wilson interval) for every member
    under every requested model.  The sweep rides the full engine —
    cache, checkpoints, manifests — and its JSON output is a pure
    function of ``(spec, seed, count, trials, shards, rng_plan)``, so a
    warm re-run prints byte-identical output while executing nothing.
    """
    import json
    import sys

    from .litmus import FamilySpec, sweep_family

    spec = FamilySpec(
        threads=args.threads,
        ops_per_thread=args.ops_per_thread,
        addresses=args.addresses,
        spacing=args.spacing,
        fence_density=args.fence_density,
        store_fraction=args.store_fraction,
    )
    report = sweep_family(
        spec, args.models, count=args.count, trials=args.trials,
        seed=args.seed, config=args.run_config,
    )
    if args.programs:
        from .litmus import generate_family
        for test in generate_family(spec, args.count, args.seed):
            print(f"{test.name}:")
            for program in test.programs:
                ops = "; ".join(repr(op) for op in program.operations)
                print(f"  {program.name}: {ops}")
    print(render_table(
        report.rows(), precision=6,
        title=f"Family sweep ({args.count} members x "
              f"{len({point.model for point in report.points})} models, "
              f"{args.trials} trials, seed {args.seed})"))
    if args.json_path:
        text = json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n"
        if args.json_path == "-":
            sys.stdout.write(text)
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(text)


def _cmd_machine(args: argparse.Namespace) -> None:
    result = run_canonical_bug(
        args.model,
        threads=args.threads,
        trials=args.trials,
        seed=args.seed,
        body_length=args.body_length,
        fenced=args.fenced,
        atomic=args.atomic,
        config=args.run_config,
    )
    print(result)


def _cmd_fences(args: argparse.Namespace) -> None:
    model = get_model(args.model)
    rows = []
    for distance in args.distances:
        value = fenced_non_manifestation(model, distance).value
        rows.append({"fence distance": distance, "Pr[A]": value, "Pr[bug]": 1 - value})
    print(render_table(rows, precision=args.precision,
                       title=f"§7 fences under {model.name}, n = 2"))


def _cmd_fleet(args: argparse.Namespace) -> None:
    models = [get_model(name) for name in args.models]
    value = heterogeneous_non_manifestation(
        models, allow_independent_approximation=args.approximate
    ).value
    fleet = "+".join(model.name for model in models)
    print(f"fleet {fleet}: Pr[A] = {value:.6f}, Pr[bug] = {1 - value:.6f}")


def _cmd_critical_section(args: argparse.Namespace) -> None:
    print(render_table(critical_section_sweep(args.lengths,
                                              config=args.run_config),
                       precision=6,
                       title="Pr[A] vs critical-section duration L"))


def _cmd_multibug(args: argparse.Namespace) -> None:
    print(render_table(multi_bug_gap_curve(args.bugs), precision=6,
                       title="Pr[A] vs bug count K (two threads)"))
    print()
    print("SC is constant; weak models decay polynomially: the model gap")
    print("DIVERGES along the bug-count axis (the dual of Theorem 6.3).")


def _cmd_verify(args: argparse.Namespace) -> None:
    """Fast paper-vs-library checklist (analytic checks only)."""
    import math

    from .core import (
        SC,
        TSO,
        c_constant,
        log_non_manifestation,
        run_length_distribution,
        steady_state_store_fraction,
        tso_two_thread_bounds,
        tso_window_distribution,
        tso_window_lower_bound,
        tso_window_upper_bound,
        wo_window_distribution,
    )

    checks: list[tuple[str, bool]] = []

    def check(name: str, ok: bool) -> None:
        checks.append((name, bool(ok)))

    check("Table 1 relaxation matrix",
          [tuple(row[c] for c in ("ST/ST", "ST/LD", "LD/ST", "LD/LD"))
           for row in table1_rows()] ==
          [(False,) * 4, (False, True, False, False),
           (True, True, False, False), (True,) * 4])
    wo = wo_window_distribution()
    check("Thm 4.1 WO closed form",
          abs(wo.pmf(0) - 2 / 3) < 1e-12 and abs(wo.pmf(3) - 2.0**-3 / 3) < 1e-12)
    tso_window = tso_window_distribution()
    check("Thm 4.1 TSO inside published bounds",
          all(tso_window_lower_bound(g) - 1e-12 <= tso_window.pmf(g)
              <= tso_window_upper_bound(g) + 1e-12 for g in range(1, 10)))
    check("Claim 4.3 store fraction 2/3",
          abs(steady_state_store_fraction() - 2 / 3) < 1e-12)
    runs = run_length_distribution()
    check("Lemma 4.2 bound + Pr[L_0] = 1/3",
          abs(runs.pmf(0) - 1 / 3) < 1e-8 and
          all(runs.pmf(mu) >= (4 / 7) * 2.0**-mu - 1e-12 for mu in range(1, 16)))
    check("Cor 5.2 c(2) = 8/3 and c(n) in [2, 4]",
          abs(c_constant(2) - 8 / 3) < 1e-12 and
          all(2 <= c_constant(n) <= 4 for n in range(1, 20)))
    sc_value = non_manifestation_probability(SC).value
    tso_value = non_manifestation_probability(TSO).value
    wo_value = non_manifestation_probability(WO).value
    lower, upper = tso_two_thread_bounds()
    check("Thm 6.2 SC = 1/6", abs(sc_value - 1 / 6) < 1e-12)
    check("Thm 6.2 WO = 7/54", abs(wo_value - 7 / 54) < 1e-12)
    check("Thm 6.2 TSO in (0.1315, 0.1369)", lower < tso_value < upper)
    ratio_small = log_non_manifestation(SC, 2) / log_non_manifestation(WO, 2)
    ratio_large = log_non_manifestation(SC, 128) / log_non_manifestation(WO, 128)
    check("Thm 6.3 gap vanishes (log-ratio -> 1)",
          ratio_small < 0.9 < 0.99 < ratio_large)
    check("Litmus verdicts match literature",
          all(verdict.matches_literature for verdict in check_all()))

    width = max(len(name) for name, _ in checks)
    failed = 0
    for name, ok in checks:
        print(f"  {name.ljust(width)}  {'OK' if ok else 'FAIL'}")
        failed += not ok
    print()
    if failed:
        print(f"{failed} of {len(checks)} checks FAILED")
        raise SystemExit(1)
    print(f"all {len(checks)} checks passed — the reproduction matches the paper")


def _cmd_cache(args: argparse.Namespace) -> None:
    """Inspect or manage the content-addressed shard result cache."""
    from .cache import ShardStore, default_cache_root

    root = args.dir if args.dir is not None else default_cache_root()
    store = ShardStore(root)
    if args.action == "stats":
        stats = store.stats()
        print(f"cache root    {stats.root}")
        print(f"entries       {stats.entries}")
        print(f"total bytes   {stats.total_bytes}")
        print(f"size cap      {stats.max_bytes}")
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {store.root}")
    else:  # verify
        checked, corrupt = store.verify()
        print(f"verified {checked} cache entr{'y' if checked == 1 else 'ies'} "
              f"in {store.root}: {len(corrupt)} corrupt")
        for path in corrupt:
            print(f"  corrupt: {path}")
        if corrupt:
            raise SystemExit(1)


def _cmd_serve(args: argparse.Namespace) -> None:
    """Run the HTTP estimation service (docs/SERVICE.md)."""
    import os
    from pathlib import Path

    from .service import serve
    from .service.schemas import MANAGED_KNOBS

    config = args.run_config
    managed = [RunConfig.cli_bindings()[knob] for knob in MANAGED_KNOBS
               if getattr(config, knob) not in (None, False)]
    if managed:
        raise SystemExit(
            f"repro serve: {', '.join(managed)} are managed by the service "
            "per job (journals, manifests, and the shard cache live under "
            "--state-dir) and cannot be set server-wide")
    state_dir = args.state_dir or os.environ.get(
        "REPRO_SERVICE_DIR", str(Path.home() / ".cache" / "repro" / "service"))
    server = serve(args.host, args.port, Path(state_dir).expanduser(),
                   default_config=config, job_workers=args.job_workers,
                   max_queued=args.max_queued,
                   drain_seconds=args.drain_seconds)
    print(f"repro serve: listening on {server.url} (state: {state_dir})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: draining and checkpointing...", flush=True)
        server.service.shutdown(args.drain_seconds)


def _cmd_experiments(args: argparse.Namespace) -> None:
    rows = [
        {
            "id": experiment.id,
            "paper artifact": experiment.paper_artifact,
            "bench": experiment.bench,
        }
        for experiment in EXPERIMENTS
    ]
    print(render_table(rows, title="Experiment registry (see DESIGN.md / EXPERIMENTS.md)"))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _add_engine_options(parser: argparse.ArgumentParser,
                        suppress: bool = False) -> None:
    """The engine/observability flag set, shared by the root parser and the
    engine-aware subcommands.

    The root parser carries the real defaults; subparsers re-declare the
    same flags with ``argparse.SUPPRESS`` defaults so the flags may be
    placed before *or after* the subcommand without the subparser's
    defaults clobbering root-parsed values.
    """
    def default(value: object) -> object:
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--workers", type=_positive_int, default=default(1), metavar="N",
        help="worker processes for Monte-Carlo trials and sweep grids "
        "(default: 1 = serial)",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=default(None), metavar="S",
        help="seed-disciplined shard count; the statistical identity of a "
        "run is (seed, shards), so results are identical at any --workers "
        "(default: 16 fixed shards whenever --workers exceeds 1)",
    )
    parser.add_argument(
        "--retries", type=int, default=default(0), metavar="R",
        help="extra attempts per failed shard, with exponential backoff "
        "(default: 0 = fail fast); retried shards are bit-identical",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=default(None), metavar="SEC",
        help="per-shard timeout in seconds for pooled execution; a timed-out "
        "shard is charged a failed attempt (default: unbounded)",
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=default(None),
        help="journal completed shards to FILE (JSONL); rerunning with the "
        "same seed/shards/experiment resumes the missing shards only and "
        "merges to the identical result",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=default(None),
        help="keep completed shards in a content-addressed result cache "
        "('auto' = the default store under ~/.cache/repro, or a "
        "directory); re-runs fetch cached shards with bit-identical "
        "results (see docs/CACHING.md and 'repro cache')",
    )
    parser.add_argument(
        "--manifest", metavar="FILE", default=default(None),
        help="append a validated run manifest (plan identity, per-shard "
        "durations, retry ledger, merged result) to FILE as JSON "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=default(None),
        help="write a JSONL span trace of the run (run > shards > merge) "
        "to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        default=default(False),
        help="show a live per-shard progress line (shards done, trials/s, "
        "ETA) on stderr",
    )
    parser.add_argument(
        "--backend", choices=["scalar", "vectorized", "fused"],
        default=default(None),
        help="simulation kernel: 'vectorized' runs whole-array NumPy "
        "batches, 'scalar' the draw-by-draw reference, 'fused' the "
        "single-pass joined-model chain (statistically equivalent; see "
        "docs/KERNELS.md; the machine paths reject 'fused'). Default: "
        "each command's native backend (thm62: vectorized; machine: "
        "scalar)",
    )
    parser.add_argument(
        "--rng-plan", choices=["spawn", "philox"], default=default("spawn"),
        help="shard-stream derivation: 'spawn' (default) is the "
        "SeedSequence discipline of every published number; 'philox' "
        "derives streams directly from (seed, shard, batch) counters — "
        "faster fan-out, different (never silently mixed) streams. See "
        "docs/API.md",
    )
    parser.add_argument(
        "--transport", choices=["auto", "pickle", "shm"],
        default=default("auto"),
        help="shard result channel: 'shm' writes packed results into a "
        "shared-memory table (zero result pickling), 'pickle' forces the "
        "historical channel, 'auto' (default) picks shm whenever a pool "
        "carries results. A scheduling concern like --workers: merged "
        "numbers are bit-identical across transports",
    )


def _engine_flags_epilog() -> str:
    """The ``--help`` epilog, generated from the ``RunConfig`` metadata.

    Generated, not hand-written, for the same reason the README flag
    table is (:meth:`RunConfig.flag_table_markdown`): a new knob lands
    in the epilog by construction, so the help text can never lag the
    flag set again.
    """
    from dataclasses import fields as dataclass_fields

    lines = ["engine flags (each folds into the one RunConfig record; "
             "see docs/API.md):"]
    for spec in dataclass_fields(RunConfig):
        flag = spec.metadata.get("cli")
        if not flag:
            continue
        doc = spec.metadata.get("doc", "").replace("`", "")
        lines.append(f"  {flag:<16} {doc}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Impact of Memory Models on Software "
        "Reliability in Multiprocessors' (PODC 2011).",
        epilog=_engine_flags_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_engine_options(parser)
    # Engine-aware subcommands accept the same flags *after* the
    # subcommand (SUPPRESS defaults keep the root's values authoritative
    # when a flag is only given up front).
    engine = argparse.ArgumentParser(add_help=False)
    _add_engine_options(engine, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 relaxation matrix").set_defaults(
        run=_cmd_table1
    )

    window = sub.add_parser("window", help="Theorem 4.1 window-growth laws")
    window.add_argument("--model", help="one model (default: all four)")
    window.add_argument("--max-gamma", type=int, default=6)
    window.add_argument("--store-probability", type=float, default=0.5)
    window.add_argument("--precision", type=int, default=5)
    window.set_defaults(run=_cmd_window)

    thm62 = sub.add_parser("thm62", help="the two-thread Theorem 6.2 table",
                           parents=[engine])
    thm62.add_argument("--trials", type=int, default=0,
                       help="also run this many Monte-Carlo trials per model")
    thm62.add_argument("--seed", type=int, default=0)
    thm62.add_argument("--precision", type=int, default=6)
    thm62.set_defaults(run=_cmd_thm62)

    scaling = sub.add_parser("scaling", help="Theorem 6.3 thread-scaling curves",
                             parents=[engine])
    scaling.add_argument("--max-n", type=int, default=64)
    scaling.set_defaults(run=_cmd_scaling)

    litmus = sub.add_parser("litmus",
                            help="litmus-test verdicts and exploration")
    litmus.add_argument("--test", help="one test (SB, MP, LB, CoRR, 2+2W, IRIW, ...)")
    litmus.set_defaults(run=_cmd_litmus)
    litmus_sub = litmus.add_subparsers(dest="litmus_command", required=False)
    explore = litmus_sub.add_parser(
        "explore", parents=[engine],
        help="sharded, cached litmus exploration: exhaustive outcome "
             "enumeration, pseudorandom frequency estimation, and the "
             "robustness classifier (docs/LITMUS.md)")
    explore.add_argument("--tests", nargs="+", metavar="TEST", default=None,
                         help="litmus tests to explore (default: the full "
                         "battery)")
    explore.add_argument("--models", nargs="+", metavar="MODEL", default=None,
                         help="memory models to explore under (default: all "
                         "four paper models)")
    explore.add_argument("--mode", choices=["exhaustive", "random", "both"],
                         default="exhaustive",
                         help="exhaustive: exact outcome sets (cached); "
                         "random: seed-disciplined frequency estimation with "
                         "a convergence cross-check; both: exhaustive first, "
                         "then random checked against it (default: "
                         "exhaustive)")
    explore.add_argument("--trials", type=int, default=100_000,
                         help="random-mode trial budget per grid point "
                         "(default: 100000)")
    explore.add_argument("--seed", type=int, default=0,
                         help="random-mode root seed (default: 0)")
    explore.add_argument("--robustness", action="store_true",
                         help="also classify each test as robust vs "
                         "non-robust per weak model (outcome-set diff "
                         "against SC)")
    explore.add_argument("--json", dest="json_path", metavar="FILE",
                         default=None,
                         help="also write the full deterministic report as "
                         "JSON to FILE ('-' for stdout)")
    explore.set_defaults(run=_cmd_litmus_explore)
    generate = litmus_sub.add_parser(
        "generate", parents=[engine],
        help="generated litmus-program families swept across the model "
             "zoo: seed-disciplined constrained random programs, "
             "manifestation brackets vs the SC baseline (docs/LITMUS.md)")
    generate.add_argument("--threads", type=int, default=2,
                          help="threads per generated program (default: 2)")
    generate.add_argument("--ops-per-thread", type=int, default=4,
                          help="memory operations per thread, the critical "
                          "pair included (default: 4)")
    generate.add_argument("--addresses", type=int, default=2,
                          help="filler address-pool size (default: 2)")
    generate.add_argument("--spacing", type=int, default=0,
                          help="filler operations strictly between the "
                          "critical store and load (default: 0)")
    generate.add_argument("--fence-density", type=float, default=0.0,
                          help="probability of a fence between consecutive "
                          "operations (default: 0.0)")
    generate.add_argument("--store-fraction", type=float, default=0.5,
                          help="probability a filler is a store "
                          "(default: 0.5)")
    generate.add_argument("--count", type=int, default=4,
                          help="family members to generate (default: 4)")
    generate.add_argument("--models", nargs="+", metavar="MODEL", default=None,
                          help="models to sweep (default: the full zoo — "
                          "SC TSO PSO WO PSO-WB SC-NMCA WO-NMCA)")
    generate.add_argument("--trials", type=int, default=20_000,
                          help="sampling budget per (member, model) point "
                          "(default: 20000)")
    generate.add_argument("--seed", type=int, default=0,
                          help="family seed: generation AND sampling "
                          "(default: 0)")
    generate.add_argument("--programs", action="store_true",
                          help="also print each generated program listing")
    generate.add_argument("--json", dest="json_path", metavar="FILE",
                          default=None,
                          help="also write the deterministic sweep report "
                          "as JSON to FILE ('-' for stdout)")
    generate.set_defaults(run=_cmd_litmus_generate)

    machine = sub.add_parser("machine", help="run the canonical bug on the simulator",
                             parents=[engine])
    machine.add_argument("--model", default="TSO")
    machine.add_argument("--threads", type=int, default=2)
    machine.add_argument("--trials", type=int, default=2000)
    machine.add_argument("--seed", type=int, default=0)
    machine.add_argument("--body-length", type=int, default=8)
    machine.add_argument("--fenced", action="store_true")
    machine.add_argument("--atomic", action="store_true")
    machine.set_defaults(run=_cmd_machine)

    fences = sub.add_parser("fences", help="the §7 fence-distance sweep")
    fences.add_argument("--model", default="TSO")
    fences.add_argument("--distances", type=int, nargs="+",
                        default=[0, 1, 2, 4, 8, 16, 48])
    fences.add_argument("--precision", type=int, default=6)
    fences.set_defaults(run=_cmd_fences)

    fleet = sub.add_parser("fleet", help="Pr[A] for a heterogeneous fleet")
    fleet.add_argument("models", nargs="+", help="e.g. SC WO TSO")
    fleet.add_argument("--approximate", action="store_true",
                       help="allow the independent-window approximation")
    fleet.set_defaults(run=_cmd_fleet)

    section = sub.add_parser("critical-section",
                             help="Pr[A] vs critical-section duration",
                             parents=[engine])
    section.add_argument("--lengths", type=int, nargs="+", default=[2, 3, 4, 6, 8])
    section.set_defaults(run=_cmd_critical_section)

    multibug = sub.add_parser("multibug",
                              help="Pr[A] vs number of racy sections (E16)")
    multibug.add_argument("--bugs", type=int, nargs="+",
                          default=[1, 2, 4, 16, 64, 256])
    multibug.set_defaults(run=_cmd_multibug)

    cache = sub.add_parser("cache",
                           help="inspect/manage the shard result cache")
    cache.add_argument("action", choices=["stats", "clear", "verify"],
                       help="stats: entry count and size; clear: delete every "
                       "entry; verify: integrity-check entries (exit 1 if any "
                       "is corrupt)")
    cache.add_argument("--dir", metavar="DIR", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                       "~/.cache/repro/shards)")
    cache.set_defaults(run=_cmd_cache)

    serve_cmd = sub.add_parser(
        "serve", help="run the HTTP estimation job server (docs/SERVICE.md)",
        parents=[engine])
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8642,
                           help="bind port; 0 picks an ephemeral port and "
                           "prints it (default: 8642)")
    serve_cmd.add_argument("--state-dir", default=None, metavar="DIR",
                           help="service state: job registry, per-job shard "
                           "journals and manifests, shared shard cache "
                           "(default: $REPRO_SERVICE_DIR or "
                           "~/.cache/repro/service)")
    serve_cmd.add_argument("--job-workers", type=_positive_int, default=1,
                           metavar="N",
                           help="concurrent jobs; each job still fans its "
                           "shards over the engine --workers (default: 1)")
    serve_cmd.add_argument("--max-queued", type=_positive_int, default=64,
                           metavar="N",
                           help="queued-job cap; extra submissions get 429 "
                           "(default: 64)")
    serve_cmd.add_argument("--drain-seconds", type=float, default=30.0,
                           metavar="SEC",
                           help="graceful-shutdown window for running jobs "
                           "(default: 30)")
    serve_cmd.set_defaults(run=_cmd_serve)

    sub.add_parser("experiments", help="list the paper-artifact registry").set_defaults(
        run=_cmd_experiments
    )

    sub.add_parser("verify", help="fast paper-vs-library checklist").set_defaults(
        run=_cmd_verify
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` script.

    The global engine flags are folded into one validated
    :class:`~repro.runconfig.RunConfig` here — the single point where
    CLI knobs become an execution context — so every subcommand handler
    sees the same ``args.run_config`` and none can drop a flag.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    args.run_config = RunConfig.from_args(args)
    args.run(args)
    return 0
