"""Machine-readable experiment output: JSON serialisation of result rows.

The benches and the CLI print human tables; downstream tooling (plotting,
regression tracking across runs) wants the same rows as data.  These
helpers serialise the library's universal "list of row dicts" shape, with
numpy scalars and the library's value types coerced to plain JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["rows_to_json", "write_rows", "read_rows"]


def _coerce(value: Any) -> Any:
    """Best-effort conversion of a cell to a JSON-serialisable value."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_coerce(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _coerce(item) for key, item in value.items()}
    # Library value types expose .value / .estimate; fall back to str.
    for attribute in ("value", "estimate"):
        inner = getattr(value, attribute, None)
        if isinstance(inner, (int, float)):
            return inner
    return str(value)


def rows_to_json(
    rows: list[dict[str, object]],
    metadata: dict[str, object] | None = None,
    indent: int = 2,
) -> str:
    """Serialise result rows (plus optional metadata) to a JSON document."""
    document: dict[str, Any] = {}
    if metadata:
        document["metadata"] = _coerce(metadata)
    document["rows"] = [_coerce(row) for row in rows]
    return json.dumps(document, indent=indent)


def write_rows(
    path: str | Path,
    rows: list[dict[str, object]],
    metadata: dict[str, object] | None = None,
) -> Path:
    """Write rows to a JSON file; returns the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rows_to_json(rows, metadata) + "\n", encoding="utf-8")
    return target.resolve()


def read_rows(path: str | Path) -> tuple[list[dict[str, object]], dict[str, object]]:
    """Read rows (and metadata) back from a JSON file."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return document.get("rows", []), document.get("metadata", {})
