"""Table/figure rendering and the experiment registry."""

from .experiments import EXPERIMENTS, Experiment, get_experiment
from .figures import ascii_bars, ascii_plot
from .io import read_rows, rows_to_json, write_rows
from .tables import format_cell, print_table, render_markdown_table, render_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ascii_bars",
    "ascii_plot",
    "format_cell",
    "get_experiment",
    "print_table",
    "read_rows",
    "render_markdown_table",
    "render_table",
    "rows_to_json",
    "write_rows",
]
