"""The experiment registry: every paper table/figure mapped to its bench.

DESIGN.md's per-experiment index, as data: the benchmark harness and the
documentation both read this registry, so the mapping from paper artifact
to reproducing code lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper."""

    id: str
    paper_artifact: str
    summary: str
    modules: tuple[str, ...]
    bench: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        id="E1",
        paper_artifact="Table 1",
        summary="Memory-model relaxation matrix (ST/ST, ST/LD, LD/ST, LD/LD).",
        modules=("repro.core.memory_models",),
        bench="benchmarks/bench_table1_memory_models.py",
    ),
    Experiment(
        id="E2",
        paper_artifact="Figure 1",
        summary="Instantiation of the settling process under TSO (round trace).",
        modules=("repro.core.settling", "repro.viz.settling_trace"),
        bench="benchmarks/bench_fig1_settling_trace.py",
    ),
    Experiment(
        id="E3",
        paper_artifact="Figure 2",
        summary="Instantiation of the shift process (3 segments, event prob 2^-13).",
        modules=("repro.core.shift", "repro.viz.shift_diagram"),
        bench="benchmarks/bench_fig2_shift_diagram.py",
    ),
    Experiment(
        id="E4",
        paper_artifact="Theorem 4.1",
        summary="Critical-window growth Pr[B_gamma] per model vs Monte Carlo.",
        modules=("repro.core.window_analytic", "repro.core.settling"),
        bench="benchmarks/bench_thm41_critical_window.py",
    ),
    Experiment(
        id="E5",
        paper_artifact="Claim 4.3",
        summary="Steady-state store fraction 2/3 under TSO.",
        modules=("repro.core.tso_analysis",),
        bench="benchmarks/bench_claim43_st_fraction.py",
    ),
    Experiment(
        id="E6",
        paper_artifact="Lemma 4.2",
        summary="Pr[L_mu] >= (4/7) 2^-mu; exact-numeric vs the paper's bound.",
        modules=("repro.core.tso_analysis", "repro.core.partitions"),
        bench="benchmarks/bench_lemma42_contiguous_sts.py",
    ),
    Experiment(
        id="E7",
        paper_artifact="Theorem 5.1 / Corollary 5.2",
        summary="Exact shift-process disjointness; c(n) in [2,4], c(2) = 8/3.",
        modules=("repro.core.shift_analytic", "repro.core.shift"),
        bench="benchmarks/bench_thm51_shift_process.py",
    ),
    Experiment(
        id="E8",
        paper_artifact="Theorem 6.2",
        summary="Two-thread Pr[A]: SC 1/6, TSO in (0.1315, 0.1369), WO 7/54.",
        modules=("repro.core.manifestation",),
        bench="benchmarks/bench_thm62_two_threads.py",
    ),
    Experiment(
        id="E9",
        paper_artifact="Theorem 6.3",
        summary="Pr[A] = e^{-n^2(1+o(1))}; the model gap vanishes with n.",
        modules=("repro.core.manifestation", "repro.analysis.asymptotics"),
        bench="benchmarks/bench_thm63_thread_scaling.py",
    ),
    Experiment(
        id="E10",
        paper_artifact="§2.2 canonical bug (machine)",
        summary="The atomicity violation on the simulated multiprocessor.",
        modules=("repro.sim",),
        bench="benchmarks/bench_machine_canonical_bug.py",
    ),
    Experiment(
        id="E11",
        paper_artifact="§2.1 model semantics (litmus)",
        summary="Litmus outcomes per model match the architecture literature.",
        modules=("repro.litmus",),
        bench="benchmarks/bench_litmus_outcomes.py",
    ),
    Experiment(
        id="E12",
        paper_artifact="Footnote 4 (PSO)",
        summary="PSO window law and two-thread Pr[A], derived and validated.",
        modules=("repro.core.window_analytic",),
        bench="benchmarks/bench_pso_extension.py",
    ),
    Experiment(
        id="E13",
        paper_artifact="§7 fences (future work)",
        summary="Acquire/release fences in the settling model; the paper's "
        "conjecture that fences change no qualitative conclusion.",
        modules=("repro.core.fences",),
        bench="benchmarks/bench_fences_extension.py",
    ),
    Experiment(
        id="E14",
        paper_artifact="§6 beyond identical marginals",
        summary="Heterogeneous fleets: exact Pr[A] for threads under "
        "different memory models.",
        modules=("repro.core.heterogeneous",),
        bench="benchmarks/bench_heterogeneous_fleet.py",
    ),
    Experiment(
        id="E15",
        paper_artifact="§2.1 store atomicity (scoping check)",
        summary="Non-atomic store propagation: an orthogonal risk axis, "
        "validating the paper's decision to ignore it.",
        modules=("repro.litmus.atomicity",),
        bench="benchmarks/bench_store_atomicity.py",
    ),
    Experiment(
        id="E16",
        paper_artifact="Theorem 6.3's dual axis (bug count)",
        summary="Many racy sections, two threads: the model gap DIVERGES "
        "along the bug-count axis (SC constant, weak models ~ K^-a).",
        modules=("repro.core.multibug",),
        bench="benchmarks/bench_multi_bug_scaling.py",
    ),
    Experiment(
        id="E17",
        paper_artifact="infrastructure: trial-budget scaling",
        summary="Sharded parallel Monte-Carlo engine: bit-reproducible "
        "for fixed (seed, shards) at any worker count; throughput "
        "tracked in BENCH_parallel_scaling.json.",
        modules=("repro.stats.parallel",),
        bench="benchmarks/bench_parallel_scaling.py",
    ),
    Experiment(
        id="E18",
        paper_artifact="infrastructure: run reliability",
        summary="Fault-tolerant, resumable shard execution: bounded "
        "retry with backoff, per-shard timeouts, BrokenProcessPool "
        "recovery, and checkpoint/resume — every recovery path merges "
        "bit-identically to an uninterrupted run (shards are pure in "
        "(seed, shards, i)); overhead tracked in BENCH_fault_recovery.json.",
        modules=("repro.stats.faults", "repro.stats.checkpoint"),
        bench="benchmarks/bench_fault_recovery.py",
    ),
    Experiment(
        id="E19",
        paper_artifact="infrastructure: observability",
        summary="Read-only observability for the sharded engine: run "
        "manifests (plan identity, per-shard durations, retry ledger, "
        "merged result), span traces, and a live progress/ETA line — "
        "inert by construction (telemetry rides the result channel, "
        "merged numbers unchanged); overhead budget <=5% enforced in "
        "BENCH_obs_overhead.json.",
        modules=("repro.obs",),
        bench="benchmarks/bench_obs_overhead.py",
    ),
    Experiment(
        id="E20",
        paper_artifact="infrastructure: vectorized kernels",
        summary="Whole-array NumPy kernels for the settling/shift/joined/"
        "machine processes (backend='vectorized' / --backend), "
        "statistically equivalent to the scalar reference and pinned by "
        "closed-form, two-sample and exact-support checks; >=10x "
        "single-core speedup committed in BENCH_vectorized_kernels.json "
        "and guarded by the CI benchmark-regression gate.",
        modules=("repro.kernels",),
        bench="benchmarks/bench_vectorized_kernels.py",
    ),
    Experiment(
        id="E21",
        paper_artifact="infrastructure: run identity + result cache",
        summary="v2 checkpoint keys fingerprint the trial kernel (the v1 "
        "format let different kernels silently share a journal); on top, "
        "a content-addressed, integrity-checked shard result cache "
        "(cache='auto' / --cache) makes warm re-runs and overlapping "
        "sweep points fetch finished shards bit-identically — warm >=5x "
        "cold committed in BENCH_cache_reuse.json.",
        modules=("repro.cache", "repro.stats.checkpoint"),
        bench="benchmarks/bench_cache_reuse.py",
    ),
    Experiment(
        id="E22",
        paper_artifact="infrastructure: estimation-as-a-service",
        summary="repro serve fronts the engine with a stdlib HTTP/JSON "
        "job API (submit / poll progress / fetch validated manifests): "
        "concurrent identical submissions dedup onto one job via the v2 "
        "identity, a priority queue with a max-queued cap rate-limits, "
        "and graceful shutdown demotes in-flight jobs for journal-backed "
        "resume on restart — warm submit-to-result latency tracked in "
        "BENCH_service_latency.json.",
        modules=("repro.service",),
        bench="benchmarks/bench_service_latency.py",
    ),
    Experiment(
        id="E23",
        paper_artifact="infrastructure: litmus exploration engine",
        summary="Sharded litmus exploration on the E11 substrate: "
        "exhaustive mode enumerates exact outcome sets over the "
        "tests x models grid, content-addressed in the shard cache "
        "(program digest + model + enumerator fingerprint), so warm "
        "re-explorations execute zero grid points; pseudorandom mode "
        "samples legal reorderings and uniformly random interleavings "
        "with seed-disciplined streams (tables bit-identical at any "
        "worker count) and must converge into the enumerated sets; the "
        "robustness analyzer diffs each weak model's set against SC — "
        "warm-cache speedup tracked in BENCH_litmus_explore.json.",
        modules=("repro.litmus.explore", "repro.litmus.robustness"),
        bench="benchmarks/bench_litmus_explore.py",
    ),
    Experiment(
        id="E24",
        paper_artifact="§6 generalised: program families x model zoo",
        summary="Constrained random litmus-program families swept "
        "across the memory-model zoo: generate_family draws "
        "seed-disciplined SB-style critical cycles (thread count, ops "
        "per thread, filler address pool, critical-pair spacing, fence "
        "density) from a dedicated Philox lane, so member i is a pure "
        "function of (spec, seed, i); sweep_family re-estimates "
        "Thm 6.2-style manifestation brackets (sampled mass outside "
        "the enumerated SC baseline, Wilson-bracketed) for every "
        "member under every zoo model — the paper four plus the "
        "operational write-buffer PSO and the non-multicopy-atomic "
        "SC/WO flavors — warm-cache sweep speedup tracked in "
        "BENCH_litmus_family.json.",
        modules=("repro.litmus.generate", "repro.litmus.zoo"),
        bench="benchmarks/bench_litmus_family.py",
    ),
)

_REGISTRY = {experiment.id: experiment for experiment in EXPERIMENTS}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (``"E1"`` … ``"E24"``)."""
    try:
        return _REGISTRY[experiment_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
