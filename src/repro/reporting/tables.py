"""Plain-text table rendering for the benchmark harness.

The benches print the same rows the paper's tables report; this module
turns lists of row dicts into aligned ASCII (and markdown) without any
third-party dependency.  Floats are formatted to a configurable precision;
booleans render as ``yes``/``no``; everything else via ``str``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table", "render_markdown_table", "format_cell"]


def format_cell(value: object, precision: int = 6) -> str:
    """Render one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _normalise(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None,
    precision: int,
) -> tuple[list[str], list[list[str]]]:
    if not rows:
        raise ValueError("cannot render an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    body = [[format_cell(row.get(column, ""), precision) for column in columns] for row in rows]
    return list(columns), body


def render_table(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 6,
    title: str | None = None,
) -> str:
    """Aligned ASCII table.

    >>> print(render_table([{"model": "SC", "Pr[A]": 1/6}], precision=4))
    model  Pr[A]
    -----  ------
    SC     0.1667
    """
    header, body = _normalise(rows, columns, precision)
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))).rstrip())
    return "\n".join(lines)


def render_markdown_table(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 6,
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md snippets)."""
    header, body = _normalise(rows, columns, precision)
    lines = ["| " + " | ".join(header) + " |", "| " + " | ".join("---" for _ in header) + " |"]
    for line in body:
        lines.append("| " + " | ".join(line) + " |")
    return "\n".join(lines)


def print_table(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 6,
    title: str | None = None,
) -> None:
    """Convenience: render and print."""
    print(render_table(rows, columns, precision, title))


__all__.append("print_table")
