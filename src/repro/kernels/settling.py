"""Vectorized settling kernels — Theorem 4.1 window growths in batch.

The scalar reference, :func:`repro.core.settling.sample_window_growth`,
draws one thread's critical-window growth γ per call.  These kernels draw
a whole batch as array operations, using the same model-specific laws:

* **SC** — γ = 0 (point mass).
* **WO** — two coupled geometric climbs; the window is program-independent.
* **TSO/PSO** — the trailing-store-run Markov chain of Lemma 4.2 advanced
  ``body_length`` rounds with array state, then the critical-load climb
  (and, for PSO, the critical-store chase).
* anything else — an honest scalar loop over the reference sampler, so
  custom models still work (just not fast).

The vectorized chain draws its per-round climb variable unconditionally
(the scalar chain draws it only on load rounds); the unused draws are
independent of everything else, so the sampled law is identical while the
stream positions differ — the backends are statistically equivalent, not
bit-identical (see ``docs/KERNELS.md``).
"""

from __future__ import annotations

import numpy as np

from ..core.instructions import DEFAULT_STORE_PROBABILITY
from ..core.memory_models import PSO, SC, TSO, WO, MemoryModel
from ..core.settling import (
    DEFAULT_BODY_LENGTH,
    _require_store_load_only,
    sample_window_growth,
)
from ..stats.rng import RandomSource

__all__ = ["window_growth_batch", "trailing_run_batch"]


def trailing_run_batch(
    model: MemoryModel,
    source: RandomSource,
    trials: int,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
) -> np.ndarray:
    """Batch trailing-store-run lengths µ (the ``L_µ`` of Lemma 4.2).

    Vectorized analogue of :func:`repro.core.settling.sample_trailing_run`:
    TSO/PSO only (other models raise).  Returns an int64 array of shape
    ``(trials,)``.
    """
    settle = _require_store_load_only(model)
    _check_trials(trials)
    return _trailing_run_chain(source, settle, store_probability, trials, body_length)


def window_growth_batch(
    model: MemoryModel,
    source: RandomSource,
    trials: int,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
) -> np.ndarray:
    """Batch critical-window growths γ (the events ``B_γ`` of Theorem 4.1).

    Vectorized analogue of
    :func:`repro.core.settling.sample_window_growth`; rows are i.i.d.
    single-thread draws (for the shared-program *matrix* coupling of §6
    use :func:`repro.core.window_sampling.sample_growth_matrix`).
    Returns an int64 array of shape ``(trials,)``.
    """
    _check_trials(trials)
    if model.relaxed_pairs == SC.relaxed_pairs:
        return np.zeros(trials, dtype=np.int64)
    settle = model.uniform_settle_probability
    if settle is None:
        return _window_growth_reference(model, source, trials, body_length,
                                        store_probability)
    if model.relaxed_pairs == WO.relaxed_pairs:
        load_climb = np.minimum(source.geometric_array(settle, trials), body_length)
        store_chase = np.minimum(source.geometric_array(settle, trials), load_climb)
        return load_climb - store_chase
    if model.relaxed_pairs in (TSO.relaxed_pairs, PSO.relaxed_pairs):
        runs = _trailing_run_chain(source, settle, store_probability, trials,
                                   body_length)
        load_climb = np.minimum(source.geometric_array(settle, trials), runs)
        if model.relaxed_pairs == TSO.relaxed_pairs:
            return load_climb
        store_chase = np.minimum(source.geometric_array(settle, trials), load_climb)
        return load_climb - store_chase
    return _window_growth_reference(model, source, trials, body_length,
                                    store_probability)


def _trailing_run_chain(
    source: RandomSource,
    settle: float,
    store_probability: float,
    trials: int,
    body_length: int,
) -> np.ndarray:
    """Advance ``trials`` independent trailing-run chains ``body_length`` rounds.

    Per round: a ST extends the run (``k → k + 1``); a LD climbs
    ``j = min(Geom(s), k)`` stores, splitting the run to ``j`` when it
    stops early (the same per-round idiom as
    :func:`repro.core.window_sampling.sample_growth_matrix`, without the
    shared-program coupling).
    """
    runs = np.zeros(trials, dtype=np.int64)
    for _ in range(body_length):
        is_store = source.bernoulli_array(store_probability, trials)
        climbs = source.geometric_array(settle, trials)
        runs = np.where(is_store, runs + 1, np.minimum(runs, climbs))
    return runs


def _window_growth_reference(
    model: MemoryModel,
    source: RandomSource,
    trials: int,
    body_length: int,
    store_probability: float,
) -> np.ndarray:
    """Custom-model fallback: the scalar reference sampler, looped."""
    return np.array(
        [sample_window_growth(model, source, body_length, store_probability)
         for _ in range(trials)],
        dtype=np.int64,
    )


def _check_trials(trials: int) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
