"""NumPy batch kernels for the paper's stochastic processes.

The abstract models of §4–§6 (settling, shift, and their join) and the
machine substrate of §2.2 each have a *scalar* reference implementation —
one trial at a time, one random draw at a time — that defines the
semantics, and is what every closed form is validated against.  This
package provides the corresponding **vectorized kernels**: whole-array
NumPy operations that run one *batch* of trials per call on a single
``Generator``-backed child stream, typically 10–100× faster per core.

Backend contract
----------------
Every kernel-backed driver (``estimate_non_manifestation``,
``run_canonical_bug``, ``measure_critical_windows``, the analysis sweeps,
and the ``--backend`` CLI flag) accepts ``backend="scalar"`` or
``backend="vectorized"``; the joined-model paths additionally accept
``backend="fused"`` (the single-pass
:func:`repro.kernels.joined.non_manifestation_fused_batch` chain), and
drivers without a fused kernel reject it explicitly via
``resolve_backend(..., allowed=...)``:

* Different backends draw randomness in different stream orders, so they
  are **statistically equivalent** (same joint law), not bit-identical —
  except :func:`repro.kernels.joined.non_manifestation_batch`, which *is*
  the historical batch path of ``estimate_non_manifestation`` and keeps
  its published fixed-seed numbers bit-for-bit.
* Each backend is bit-reproducible on its own terms: fixed
  ``(seed, shards, backend)`` gives identical results at any worker
  count, because kernels consume per-shard child streams exactly like
  every other engine kernel (see ``docs/KERNELS.md``).
* Manifest/checkpoint labels are salted with the backend, so one journal
  or manifest file can hold both backends' runs without cross-talk.

The catalogue below maps each kernel to the paper artifact it simulates;
``docs/KERNELS.md`` documents the same table with the seed-discipline
contract and backend-selection guidance.
"""

from __future__ import annotations

from .joined import (
    non_manifestation_batch,
    non_manifestation_fused_batch,
    non_manifestation_scalar_batch,
)
from .machine import (
    SUPPORTED_MACHINE_MODELS,
    canonical_bug_batch,
    machine_race_batch,
)
from .settling import trailing_run_batch, window_growth_batch
from .shift import (
    estimate_shift_disjointness,
    sample_shifts_batch,
    shift_disjoint_batch,
)
from .validation import (
    assert_contains_probability,
    assert_equivalent_proportions,
    equivalence_tolerance,
)

__all__ = [
    "BACKENDS",
    "resolve_backend",
    "KERNEL_CATALOGUE",
    "window_growth_batch",
    "trailing_run_batch",
    "shift_disjoint_batch",
    "sample_shifts_batch",
    "estimate_shift_disjointness",
    "non_manifestation_batch",
    "non_manifestation_scalar_batch",
    "non_manifestation_fused_batch",
    "machine_race_batch",
    "canonical_bug_batch",
    "SUPPORTED_MACHINE_MODELS",
    "equivalence_tolerance",
    "assert_equivalent_proportions",
    "assert_contains_probability",
]

#: The recognised simulation backends.  ``"fused"`` is the single-pass
#: joined-model chain (:func:`non_manifestation_fused_batch`); drivers
#: without a fused kernel restrict their accepted subset via the
#: ``allowed`` parameter of :func:`resolve_backend`.
BACKENDS = ("scalar", "vectorized", "fused")


def resolve_backend(backend: str,
                    allowed: tuple[str, ...] | None = None) -> str:
    """Validate a backend name; returns it unchanged.

    ``allowed`` restricts the accepted subset for drivers that do not
    implement every backend (e.g. the machine paths have no fused
    kernel) — unknown names and known-but-unsupported names both raise,
    with messages that tell the two cases apart.

    >>> resolve_backend("vectorized")
    'vectorized'
    """
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown backend {backend!r}; known backends: {known}")
    if allowed is not None and backend not in allowed:
        supported = ", ".join(allowed)
        raise ValueError(
            f"backend {backend!r} is not supported here; choose one of: {supported}"
        )
    return backend


#: Kernel catalogue: public kernel name -> (paper artifact, one-line summary).
#: ``docs/KERNELS.md`` documents every entry (enforced by the docs suite).
KERNEL_CATALOGUE: dict[str, tuple[str, str]] = {
    "window_growth_batch": (
        "Theorem 4.1",
        "Batch critical-window growths gamma per model (SC/WO/TSO/PSO laws).",
    ),
    "trailing_run_batch": (
        "Lemma 4.2",
        "Batch trailing-store-run Markov chains for TSO/PSO settling.",
    ),
    "shift_disjoint_batch": (
        "Theorem 5.1 / Corollary 5.2",
        "Batch geometric-shift draws with the closed-interval disjointness count.",
    ),
    "non_manifestation_batch": (
        "Theorems 6.2 / 6.3",
        "Batch joined-model trials: shared program, settled windows, shifts, Pr[A].",
    ),
    "non_manifestation_fused_batch": (
        "Theorems 6.2 / 6.3",
        "Fused settle-shift-disjointness pass: inversion-sampled, in-place, z-equivalent.",
    ),
    "machine_race_batch": (
        "§2.2 canonical bug",
        "Batch cycle-accurate canonical-increment races (SC/TSO/PSO cores).",
    ),
}
