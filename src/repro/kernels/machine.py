"""Vectorized machine kernels — the §2.2 canonical bug in batch.

The scalar machine (:mod:`repro.sim`) executes one trial at a time:
Python objects per core, a cycle loop, a store-buffer deque.  For the
canonical increment race under the geometric-launch scheduler, the whole
trial is expressible as array state — per ``(trial, core)`` integers for
the program counter, store-buffer occupancy, and the critical access
cycles — advanced one *global* cycle per loop iteration across the entire
batch.

Scope: the racy :func:`repro.sim.programs.canonical_increment` workload
under :class:`repro.sim.scheduler.GeometricLaunchScheduler`, for the
**SC**, **TSO** and **PSO** cores (:data:`SUPPORTED_MACHINE_MODELS`).
The WO core's out-of-order ready-set dynamics (register hazards across a
random issue window) do not vectorize honestly, and the fenced/atomic
variants change the per-op semantics — all of those raise, and the
drivers fall back to ``backend="scalar"``.

Semantics mirrored from the scalar machine (validated statistically in
the test suite):

* per cycle, a scheduled core executes one op; the store buffer then
  gets a background drain chance ``drain_probability`` — for *every*
  core of a live trial, launched or not, retired or not;
* a store into a full buffer structurally stalls, draining one entry
  (FIFO-oldest for TSO; a uniformly random buffered address for PSO —
  every buffered address is distinct on this workload);
* the run ends when all cores have issued everything; remaining buffered
  stores flush on the following cycle in core-index order;
* the final counter replays the per-trial read/commit events of ``x`` in
  ``(cycle, core index)`` order — the same order the scalar machine's
  in-cycle core loop produces, since each core's read and commit cycles
  are at least two cycles apart.

The kernel draws randomness in a different stream order than the scalar
machine (per-cycle arrays instead of per-core streams), so the backends
are statistically equivalent, not bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..sim.cpu import DEFAULT_BUFFER_CAPACITY, DEFAULT_DRAIN_PROBABILITY
from ..stats.rng import RandomSource

__all__ = [
    "SUPPORTED_MACHINE_MODELS",
    "machine_race_batch",
    "canonical_bug_batch",
]

#: Core models the vectorized machine kernel implements.
SUPPORTED_MACHINE_MODELS = ("SC", "TSO", "PSO")

#: Safety net mirroring :data:`repro.sim.machine.MAX_CYCLES` — geometric
#: tails make the horizon unbounded in principle, but a batch that is
#: still live after this many cycles indicates a kernel bug.
_MAX_CYCLES = 100_000


def machine_race_batch(
    source: RandomSource,
    batch: int,
    model_name: str,
    threads: int = 2,
    body_length: int = 8,
    beta: float = 0.5,
    drain_probability: float = DEFAULT_DRAIN_PROBABILITY,
    buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
    store_probability: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run ``batch`` canonical-increment races as array operations.

    Returns ``(reads, commits, finals)``: the critical load's read cycle
    and the critical store's commit cycle per ``(trial, core)`` — the
    measured critical window of :mod:`repro.sim.measurement` — and the
    final shared-counter value per trial (``finals < threads`` is the
    manifestation event).
    """
    model = model_name.upper()
    if model not in SUPPORTED_MACHINE_MODELS:
        known = ", ".join(SUPPORTED_MACHINE_MODELS)
        raise SimulationError(
            f"vectorized machine kernel supports {known}; {model_name!r} "
            "requires backend='scalar'"
        )
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    if threads < 2:
        raise ValueError(f"the race needs at least 2 threads, got {threads}")
    delays = source.geometric_array(beta, (batch, threads))
    if model == "SC":
        # In-order, immediate commits: read at launch + body, commit two
        # cycles later (the add sits between), all in closed form.
        reads = delays + body_length
        commits = reads + 2
    else:
        body_stores = source.bernoulli_array(store_probability,
                                             (batch, body_length))
        reads, commits = _store_buffer_timeline(
            source, delays, body_stores, threads, model == "PSO",
            drain_probability, buffer_capacity,
        )
    finals = _replay_counter(reads, commits)
    return reads, commits, finals


def canonical_bug_batch(
    source: RandomSource,
    batch: int,
    model_name: str,
    threads: int = 2,
    body_length: int = 8,
    beta: float = 0.5,
    drain_probability: float = DEFAULT_DRAIN_PROBABILITY,
    buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
) -> dict[int, int]:
    """Final-counter outcome counts over ``batch`` races (E10's PMF)."""
    _, _, finals = machine_race_batch(
        source, batch, model_name, threads, body_length, beta,
        drain_probability, buffer_capacity,
    )
    values, counts = np.unique(finals, return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}


def _store_buffer_timeline(
    source: RandomSource,
    delays: np.ndarray,
    body_stores: np.ndarray,
    threads: int,
    pso: bool,
    drain_probability: float,
    capacity: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Cycle-accurate TSO/PSO timelines for the canonical workload.

    Array state per ``(trial, core)``: program counter ``pc`` over the
    ``m + 3`` ops (m body ops, critical load, add, critical store),
    buffer occupancy ``occ``, whether the critical store is buffered and
    (TSO) how many entries sit ahead of it.  Store-to-load forwarding
    never fires on this workload (every load's address is disjoint from
    every earlier store's), so loads always read memory.
    """
    batch, body_length = body_stores.shape
    program_length = body_length + 3
    shape = (batch, threads)
    generator = source.generator

    pc = np.zeros(shape, dtype=np.int64)
    occ = np.zeros(shape, dtype=np.int64)
    crit_in = np.zeros(shape, dtype=bool)
    crit_rank = np.zeros(shape, dtype=np.int64)
    reads = np.full(shape, -1, dtype=np.int64)
    commits = np.full(shape, -1, dtype=np.int64)
    end_cycle = np.full(batch, -1, dtype=np.int64)
    trial_live = np.ones(batch, dtype=bool)
    rows = np.arange(batch)[:, np.newaxis]

    def drain(mask: np.ndarray, cycle: int) -> None:
        """Commit one buffered entry per masked core (mask ⊆ occ > 0)."""
        nonlocal occ, crit_in, crit_rank, commits
        if pso:
            # A drain picks a uniformly random buffered address; all
            # addresses are distinct here, so the critical store commits
            # with probability 1 / occupancy while buffered.
            uniform = generator.random(shape)
            crit_commit = mask & crit_in & (uniform * occ < 1.0)
        else:
            crit_commit = mask & crit_in & (crit_rank == 0)
        commits = np.where(crit_commit, cycle, commits)
        crit_in = crit_in & ~crit_commit
        if not pso:
            crit_rank = np.where(mask & crit_in, crit_rank - 1, crit_rank)
        occ = occ - mask.astype(np.int64)

    for cycle in range(_MAX_CYCLES):
        if not trial_live.any():
            break
        live = trial_live[:, np.newaxis]
        retired = pc >= program_length
        stepping = live & ~retired & (cycle >= delays)

        # ---- step phase: one op per scheduled, unretired core --------
        body_op = stepping & (pc < body_length)
        body_is_store = np.take_along_axis(
            body_stores, np.clip(pc, 0, body_length - 1), axis=1
        )
        storing = (body_op & body_is_store) | (stepping & (pc == body_length + 2))
        stalled = storing & (occ >= capacity)
        drain(stalled, cycle)  # structural stall: drain instead of issuing
        pushing = storing & ~stalled
        crit_push = pushing & (pc == body_length + 2)
        crit_in = crit_in | crit_push
        crit_rank = np.where(crit_push, occ, crit_rank)
        occ = occ + pushing.astype(np.int64)
        reads = np.where(stepping & (pc == body_length), cycle, reads)
        pc = pc + (stepping & ~stalled).astype(np.int64)

        # ---- background phase: buffers drain on every live core ------
        chance = generator.random(shape) < drain_probability
        drain(live & (occ > 0) & chance, cycle)

        # ---- end-of-trial bookkeeping --------------------------------
        finished = trial_live & (pc >= program_length).all(axis=1)
        end_cycle = np.where(finished, cycle + 1, end_cycle)
        trial_live = trial_live & ~finished
    else:  # pragma: no cover - defensive, mirrors Machine.MAX_CYCLES
        raise SimulationError(
            f"vectorized machine did not finish within {_MAX_CYCLES} cycles"
        )

    # Flush: remaining buffered criticals commit on the cycle after the
    # last core retired (core-index order is preserved by the replay key).
    commits = np.where(crit_in, np.broadcast_to(end_cycle[:, np.newaxis], shape),
                       commits)
    del rows
    return reads, commits


def _replay_counter(reads: np.ndarray, commits: np.ndarray) -> np.ndarray:
    """Final counter value per trial from the critical access cycles.

    Replays the ``2n`` read/commit events of ``x`` in ``(cycle, core)``
    order: a read captures the current value into the core's register; a
    commit publishes that captured value plus one.  Each ``(cycle, core)``
    pair holds at most one event (a core's read precedes its own commit
    by at least two cycles), so the key is collision-free.
    """
    batch, n = reads.shape
    cores = np.arange(n, dtype=np.int64)
    keys = np.concatenate([reads * n + cores, commits * n + cores], axis=1)
    order = np.argsort(keys, axis=1, kind="stable")
    value = np.zeros(batch, dtype=np.int64)
    held = np.zeros((batch, n), dtype=np.int64)
    rows = np.arange(batch)
    for slot in range(2 * n):
        event = order[:, slot]
        is_read = event < n
        core = np.where(is_read, event, event - n)
        held[rows, core] = np.where(is_read, value, held[rows, core])
        value = np.where(is_read, value, held[rows, core] + 1)
    return value
