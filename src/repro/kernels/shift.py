"""Vectorized shift-process kernels — Theorem 5.1 disjointness in batch.

The shift process (§5, Definition 1) translates ``n`` closed segments by
i.i.d. geometric shifts and asks whether they are mutually disjoint.  The
scalar reference draws one event per call
(:meth:`repro.core.shift.ShiftProcess.sample_event`); the kernels here
draw a ``(batch, n)`` shift matrix in one call and count disjoint rows
with the shared vectorized checker
(:func:`repro.core.shift.batch_disjoint` — closed-interval convention,
shared endpoints overlap).

:func:`estimate_shift_disjointness` rides the sharded Monte-Carlo engine
(:func:`repro.stats.montecarlo.run_event_trials`): the kernel is a
module-level picklable batch trial, so parallelism, retries, checkpoints
and manifests all compose unchanged.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..core.shift import DEFAULT_SHIFT_RATIO, batch_disjoint
from ..stats.montecarlo import BernoulliResult, run_event_trials
from ..stats.rng import RandomSource

__all__ = [
    "sample_shifts_batch",
    "shift_disjoint_batch",
    "estimate_shift_disjointness",
]


def sample_shifts_batch(
    source: RandomSource,
    batch: int,
    n: int,
    beta: float = DEFAULT_SHIFT_RATIO,
) -> np.ndarray:
    """Draw a ``(batch, n)`` matrix of i.i.d. geometric shifts."""
    if batch <= 0 or n <= 0:
        raise ValueError(f"batch and n must be positive, got {batch}, {n}")
    return source.geometric_array(beta, (batch, n))


def shift_disjoint_batch(
    source: RandomSource,
    batch: int,
    lengths: np.ndarray | list[int] | tuple[int, ...],
    beta: float = DEFAULT_SHIFT_RATIO,
) -> int:
    """Number of disjoint outcomes among ``batch`` draws of ``A(γ̄)``.

    ``lengths`` are the segment lengths γ̄ (one closed segment
    ``[s_i, s_i + γ_i]`` per entry).  This is the engine-ready batch
    trial: ``batch`` rows of shifts, one vectorized disjointness check.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    shifts = sample_shifts_batch(source, batch, lengths.size, beta)
    return int(batch_disjoint(shifts, lengths).sum())


def _shift_batch_trial(
    source: RandomSource,
    batch: int,
    lengths: tuple[int, ...],
    beta: float,
) -> int:
    """Module-level kernel so the engine can pickle it across workers."""
    return shift_disjoint_batch(source, batch, lengths, beta)


def estimate_shift_disjointness(
    lengths: list[int] | tuple[int, ...],
    trials: int,
    beta: float = DEFAULT_SHIFT_RATIO,
    seed: int | None = 0,
    confidence: float = 0.99,
    **engine_options,
) -> BernoulliResult:
    """Monte-Carlo ``Pr[A(γ̄)]`` on the sharded engine, vectorized.

    The picklable counterpart of
    :func:`repro.core.shift.estimate_disjointness`: ``engine_options``
    (``workers``/``shards``/``retries``/``timeout``/``checkpoint``/
    ``manifest``/``trace``/``progress``) forward to
    :func:`repro.stats.montecarlo.run_event_trials`, so the kernel fans
    out over processes and journals/manifests like any other experiment.
    """
    lengths = tuple(int(length) for length in lengths)
    batch_trial = partial(_shift_batch_trial, lengths=lengths, beta=beta)
    label = f"shift:lengths={','.join(map(str, lengths))}:beta={beta}"
    return run_event_trials(batch_trial, trials, seed=seed, confidence=confidence,
                            checkpoint_label=label, **engine_options)
