"""Joined-model kernels — the §6 non-manifestation event in batch.

``non_manifestation_batch`` is the vectorized end-to-end trial of
Theorems 6.2/6.3: settle a ``(batch, n)`` growth matrix with the
shared-program coupling, add the critical-section length, shift every
thread geometrically, and count trials where no two windows overlap.

This function *is* the historical batch path of
:func:`repro.core.manifestation.estimate_non_manifestation` (relocated
here verbatim): its random-draw sequence is unchanged, so every published
fixed-seed number is bit-identical — pinned by a golden-value test.

``non_manifestation_scalar_batch`` is the scalar reference backend: per
trial it generates one explicit program, settles each thread with the
round-by-round reference simulator
(:class:`repro.core.settling.SettlingProcess`), and checks disjointness
on scalar draws.  It defines the semantics the vectorized kernel must
reproduce statistically, and is what ``backend="scalar"`` selects.

``non_manifestation_fused_batch`` is the fused fast path
(``backend="fused"``): the same settle → shift → disjointness chain run
in one pass over memory.  Per the backend contract it is
**statistically equivalent** to the composed chain (same joint law,
validated by the two-sample z harness in
:mod:`repro.kernels.validation`), not bit-identical: every geometric
block is drawn by in-place inversion of one uniform block
(``floor(log1p(-u) / log(beta))``) instead of ``Generator.geometric`` —
the same distribution at under half the cost — in-place ufuncs replace
the per-round ``np.where``/``np.minimum`` temporaries, the growth
matrix is promoted to window lengths in place, and for ``n == 2`` the
disjointness test is a closed form with no ``argsort`` and no gathered
start/end matrices.  Like every backend it is bit-reproducible on its
own terms: fixed ``(seed, shards)`` gives identical fused counts at any
worker count.
"""

from __future__ import annotations

import numpy as np

from ..core.instructions import generate_program
from ..core.memory_models import PSO, SC, TSO, WO, MemoryModel
from ..core.settling import SettlingProcess
from ..core.shift import batch_disjoint, segments_disjoint
from ..core.window_sampling import sample_growth_matrix
from ..stats.rng import RandomSource, _check_beta

__all__ = [
    "non_manifestation_batch",
    "non_manifestation_scalar_batch",
    "non_manifestation_fused_batch",
]


def non_manifestation_batch(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """One vectorised §6 batch: settle windows, shift threads, count A.

    Module level (rather than a closure inside the estimator) so that a
    ``functools.partial`` over it pickles and the batches can fan out over
    worker processes.
    """
    growths = sample_growth_matrix(
        model, source, batch, n, body_length, store_probability
    )
    lengths = growths + critical_section_length
    shifts = source.geometric_array(beta, (batch, n))
    return int(batch_disjoint(shifts, lengths).sum())


def _fused_geometric(source: RandomSource, beta: float,
                     shape: tuple[int, int]) -> np.ndarray:
    """Geometric block by in-place inversion of one uniform block.

    ``X = floor(log(1 - U) / log(beta))`` with ``U ~ U[0, 1)`` has
    ``Pr[X = k] = (1 - beta) * beta**k`` — the same law as
    :meth:`RandomSource.geometric_array` — at under half the cost of
    ``Generator.geometric`` plus its ``astype``/decrement copies: the
    uniform block is transformed in place and only the final int64 cast
    allocates.  The draws differ from the composed chain's (inversion
    consumes the stream differently), which is why the fused backend is
    z-equivalent rather than bit-identical.
    """
    _check_beta(beta)
    if beta == 0.0:
        return np.zeros(shape, dtype=np.int64)
    u = source.generator.random(shape)
    np.negative(u, out=u)
    np.log1p(u, out=u)
    u /= np.log(beta)
    np.floor(u, out=u)
    return u.astype(np.int64)


def non_manifestation_fused_batch(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """One fused §6 batch: settle, shift, and count A in a single pass.

    Same joint law as :func:`non_manifestation_batch` — z-equivalent,
    not bit-identical (see the module docstring) — while allocating only
    the arrays that must exist: the run matrix and the current uniform
    block.  Custom models without a uniform settle law delegate to the
    composed chain — fusion is a fast path, never a semantic fork.
    """
    if batch <= 0 or n <= 0:
        raise ValueError(f"batch and n must be positive, got {batch}, {n}")
    shape = (batch, n)
    settle = model.uniform_settle_probability
    if model.relaxed_pairs == SC.relaxed_pairs:
        lengths = np.full(shape, critical_section_length, dtype=np.int64)
    elif settle is None:
        # No uniform law to vectorise — the composed chain's reference
        # fallback is already the only implementation.
        return non_manifestation_batch(
            source, batch, model, n, store_probability, beta,
            body_length, critical_section_length,
        )
    elif model.relaxed_pairs == WO.relaxed_pairs:
        lengths = _fused_geometric(source, settle, shape)
        np.minimum(lengths, body_length, out=lengths)
        chase = _fused_geometric(source, settle, shape)
        np.minimum(chase, lengths, out=chase)
        lengths -= chase
        lengths += critical_section_length
    elif model.relaxed_pairs in (TSO.relaxed_pairs, PSO.relaxed_pairs):
        runs = np.zeros(shape, dtype=np.int64)
        for _ in range(body_length):
            is_store = source.bernoulli_array(store_probability, batch)
            climbs = _fused_geometric(source, settle, shape)
            rows = is_store[:, np.newaxis]
            # Disjoint row masks: stores extend the run, loads split it.
            np.add(runs, 1, out=runs, where=rows)
            np.logical_not(is_store, out=is_store)  # `rows` now = loads
            np.minimum(runs, climbs, out=runs, where=rows)
        lengths = _fused_geometric(source, settle, shape)
        np.minimum(lengths, runs, out=lengths)
        if model.relaxed_pairs == PSO.relaxed_pairs:
            chase = _fused_geometric(source, settle, shape)
            np.minimum(chase, lengths, out=chase)
            lengths -= chase
        lengths += critical_section_length
    else:
        return non_manifestation_batch(
            source, batch, model, n, store_probability, beta,
            body_length, critical_section_length,
        )
    shifts = _fused_geometric(source, beta, shape)
    if n == 2:
        # Closed form of the stable-sort disjointness check: with
        # s0 <= s1 the windows are disjoint iff s1 > s0 + l0, otherwise
        # iff s0 > s1 + l1 (ties keep thread order, matching the stable
        # argsort in ``batch_disjoint``).
        s0, s1 = shifts[:, 0], shifts[:, 1]
        first = s0 <= s1
        disjoint = np.where(first,
                            s1 - s0 > lengths[:, 0],
                            s0 - s1 > lengths[:, 1])
        return int(np.count_nonzero(disjoint))
    return int(batch_disjoint(shifts, lengths).sum())


def non_manifestation_scalar_batch(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """The scalar reference §6 trial loop (one draw at a time).

    Per trial: one shared program (§6's "identical copies of a single
    program"), ``n`` independent reference settlings, ``n`` scalar
    geometric shifts, and the closed-interval disjointness check.
    """
    process = SettlingProcess(model)
    successes = 0
    for _ in range(batch):
        program = generate_program(body_length, source, store_probability)
        lengths = np.empty(n, dtype=np.int64)
        for thread in range(n):
            growth = process.settle(program, source).window_growth
            lengths[thread] = growth + critical_section_length
        shifts = np.array([source.geometric(beta) for _ in range(n)],
                          dtype=np.int64)
        successes += segments_disjoint(shifts, lengths)
    return int(successes)
