"""Joined-model kernels — the §6 non-manifestation event in batch.

``non_manifestation_batch`` is the vectorized end-to-end trial of
Theorems 6.2/6.3: settle a ``(batch, n)`` growth matrix with the
shared-program coupling, add the critical-section length, shift every
thread geometrically, and count trials where no two windows overlap.

This function *is* the historical batch path of
:func:`repro.core.manifestation.estimate_non_manifestation` (relocated
here verbatim): its random-draw sequence is unchanged, so every published
fixed-seed number is bit-identical — pinned by a golden-value test.

``non_manifestation_scalar_batch`` is the scalar reference backend: per
trial it generates one explicit program, settles each thread with the
round-by-round reference simulator
(:class:`repro.core.settling.SettlingProcess`), and checks disjointness
on scalar draws.  It defines the semantics the vectorized kernel must
reproduce statistically, and is what ``backend="scalar"`` selects.
"""

from __future__ import annotations

import numpy as np

from ..core.instructions import generate_program
from ..core.memory_models import MemoryModel
from ..core.settling import SettlingProcess
from ..core.shift import batch_disjoint, segments_disjoint
from ..core.window_sampling import sample_growth_matrix
from ..stats.rng import RandomSource

__all__ = ["non_manifestation_batch", "non_manifestation_scalar_batch"]


def non_manifestation_batch(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """One vectorised §6 batch: settle windows, shift threads, count A.

    Module level (rather than a closure inside the estimator) so that a
    ``functools.partial`` over it pickles and the batches can fan out over
    worker processes.
    """
    growths = sample_growth_matrix(
        model, source, batch, n, body_length, store_probability
    )
    lengths = growths + critical_section_length
    shifts = source.geometric_array(beta, (batch, n))
    return int(batch_disjoint(shifts, lengths).sum())


def non_manifestation_scalar_batch(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """The scalar reference §6 trial loop (one draw at a time).

    Per trial: one shared program (§6's "identical copies of a single
    program"), ``n`` independent reference settlings, ``n`` scalar
    geometric shifts, and the closed-interval disjointness check.
    """
    process = SettlingProcess(model)
    successes = 0
    for _ in range(batch):
        program = generate_program(body_length, source, store_probability)
        lengths = np.empty(n, dtype=np.int64)
        for thread in range(n):
            growth = process.settle(program, source).window_growth
            lengths[thread] = growth + critical_section_length
        shifts = np.array([source.geometric(beta) for _ in range(n)],
                          dtype=np.int64)
        successes += segments_disjoint(shifts, lengths)
    return int(successes)
