"""Statistical equivalence harness for scalar-vs-vectorized backends.

The two backends draw randomness in different stream orders, so their
fixed-seed outputs differ bit-for-bit while sampling the same law.  The
correctness claim is therefore *statistical*: two independent samples of
the same Bernoulli event must produce proportions whose gap is explained
by sampling noise.  This module centralises that check so every
equivalence test in the suite applies the same two-sample z-tolerance
instead of ad-hoc magic constants.

``equivalence_tolerance`` is the half-width of the two-sample normal
test for the difference of proportions at the given confidence — at the
suite's default 0.999 a true-null test flakes about once per thousand
runs per assertion, and any systematic semantic divergence larger than
the tolerance fails deterministically as trial counts grow.
"""

from __future__ import annotations

import math

from ..stats.intervals import normal_quantile, wilson_interval

__all__ = [
    "equivalence_tolerance",
    "assert_equivalent_proportions",
    "assert_contains_probability",
]

#: Per-assertion confidence used by the suite's equivalence tests: tight
#: enough to catch semantic drift, loose enough (≈1/1000 false-positive
#: rate per assertion) not to flake CI.
DEFAULT_EQUIVALENCE_CONFIDENCE = 0.999


def equivalence_tolerance(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    confidence: float = DEFAULT_EQUIVALENCE_CONFIDENCE,
) -> float:
    """Allowed |p̂_a − p̂_b| for two same-law Bernoulli samples.

    The two-sample z half-width with the pooled variance estimate, plus
    the two discretisation quanta ``1/trials`` (a one-count difference
    must never fail on its own at tiny sample sizes).
    """
    _check(successes_a, trials_a)
    _check(successes_b, trials_b)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    z = normal_quantile(0.5 + confidence / 2.0)
    return z * math.sqrt(variance) + 1.0 / trials_a + 1.0 / trials_b


def assert_equivalent_proportions(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    confidence: float = DEFAULT_EQUIVALENCE_CONFIDENCE,
    context: str = "",
) -> None:
    """Assert two Bernoulli samples are consistent with one shared p.

    Raises ``AssertionError`` with both proportions, the gap and the
    tolerance when the two-sample test rejects at ``confidence``.
    """
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    tolerance = equivalence_tolerance(
        successes_a, trials_a, successes_b, trials_b, confidence
    )
    gap = abs(p_a - p_b)
    label = f" [{context}]" if context else ""
    assert gap <= tolerance, (
        f"backend proportions diverge{label}: "
        f"{p_a:.6f} ({successes_a}/{trials_a}) vs "
        f"{p_b:.6f} ({successes_b}/{trials_b}); "
        f"gap {gap:.6f} > tolerance {tolerance:.6f} @ {confidence}"
    )


def assert_contains_probability(
    successes: int,
    trials: int,
    probability: float,
    confidence: float = DEFAULT_EQUIVALENCE_CONFIDENCE,
    context: str = "",
) -> None:
    """Assert a closed-form probability lies in the sample's Wilson CI."""
    interval = wilson_interval(successes, trials, confidence)
    label = f" [{context}]" if context else ""
    assert interval.contains(probability), (
        f"closed form outside Monte-Carlo interval{label}: "
        f"expected {probability:.6f}, observed {interval}"
    )


def _check(successes: int, trials: int) -> None:
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
