"""The cycle-driven multiprocessor: cores + shared memory + scheduler.

A :class:`Machine` owns one :class:`~repro.sim.memory.SharedMemory`, one
core per thread program (all implementing the same memory model), and a
:class:`~repro.sim.scheduler.Scheduler`.  :meth:`Machine.run` advances
cycles until every core has fully retired and drained, then force-flushes
any residue (a real program would fence before exiting) and returns a
:class:`MachineResult` with the final memory, registers, and access log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..stats.rng import RandomSource
from .cpu import Core, make_core
from .isa import ThreadProgram
from .memory import AccessRecord, SharedMemory
from .scheduler import LockStepScheduler, Scheduler

__all__ = ["Machine", "MachineResult"]

#: Hard cap on cycles; straight-line programs finish in O(length), so
#: hitting this always indicates a simulator bug.
MAX_CYCLES = 1_000_000


@dataclass(frozen=True)
class MachineResult:
    """Outcome of one machine run."""

    memory: dict[str, int]
    registers: dict[str, dict[str, int]]
    cycles: int
    log: list[AccessRecord]

    def register(self, core: str, name: str) -> int:
        """Final value of one core's register."""
        return self.registers[core][name]

    def location(self, location: str) -> int:
        """Final value of one memory location."""
        return self.memory.get(location, 0)


class Machine:
    """A shared-memory multiprocessor running one memory model.

    Parameters
    ----------
    model_name:
        One of ``"SC"``, ``"TSO"``, ``"PSO"``, ``"WO"`` (see
        :data:`repro.sim.cpu.CORE_KINDS`).
    programs:
        One straight-line :class:`~repro.sim.isa.ThreadProgram` per core.
    scheduler:
        Interleaving policy; defaults to lock-step.
    initial_memory:
        Starting memory contents (unlisted locations read 0).
    log_accesses:
        Record every read/commit in the result's log (off by default).
    core_options:
        Extra keyword arguments forwarded to the core constructor (e.g.
        ``drain_probability`` for TSO/PSO, ``window_size`` for WO).
    """

    def __init__(
        self,
        model_name: str,
        programs: list[ThreadProgram],
        scheduler: Scheduler | None = None,
        initial_memory: dict[str, int] | None = None,
        log_accesses: bool = False,
        **core_options,
    ):
        if not programs:
            raise SimulationError("a machine needs at least one thread program")
        self._model_name = model_name
        self._programs = list(programs)
        self._scheduler = scheduler if scheduler is not None else LockStepScheduler()
        self._initial_memory = dict(initial_memory or {})
        self._log_accesses = log_accesses
        self._core_options = core_options

    def run(self, source: RandomSource) -> MachineResult:
        """Execute to completion and return the final state."""
        memory = SharedMemory(self._initial_memory, log_accesses=self._log_accesses)
        core_sources = source.spawn(len(self._programs) + 1)
        scheduler_source = core_sources[-1]
        cores: list[Core] = [
            make_core(
                self._model_name,
                program.name,
                program,
                memory,
                core_source,
                **self._core_options,
            )
            for program, core_source in zip(self._programs, core_sources)
        ]
        self._scheduler.prepare(len(cores), scheduler_source)

        cycle = 0
        # Run until every core has issued everything; once all cores are
        # retired no further reads can happen, so draining the remaining
        # buffered stores immediately is observationally equivalent.
        while not all(core.retired for core in cores):
            if cycle >= MAX_CYCLES:
                raise SimulationError(
                    f"machine did not finish within {MAX_CYCLES} cycles — simulator bug"
                )
            for index, core in enumerate(cores):
                if not core.retired and self._scheduler.scheduled(index, cycle, scheduler_source):
                    core.step(cycle)
                core.background_step(cycle)
            cycle += 1

        for core in cores:
            core.flush(cycle)

        return MachineResult(
            memory=memory.snapshot(),
            registers={core.name: dict(core.registers) for core in cores},
            cycles=cycle,
            log=memory.log,
        )
