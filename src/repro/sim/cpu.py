"""Per-memory-model core pipelines for the simulated multiprocessor.

Each core model implements one memory consistency model *mechanistically*,
with the microarchitectural feature that motivates it in the literature
(§2.1 of the paper):

* :class:`SCCore` — in-order, one memory operation at a time, stores
  globally visible at execution.  The paper's "simple (and slow)"
  SC implementation (§7).
* :class:`TSOCore` — a FIFO store buffer with store-to-load forwarding;
  loads may complete while older stores sit buffered (the ST→LD
  relaxation).  Buffered stores drain to memory with a configurable
  per-cycle probability — the mechanistic analogue of the settling
  probability ``s``.
* :class:`PSOCore` — per-address store queues whose drains may interleave
  across addresses (adds the ST→ST relaxation).
* :class:`WOCore` — an out-of-order issue window that each cycle executes
  a uniformly random *ready* operation (all four relaxations, bounded by
  data dependencies, same-address order, and fences).

All cores honour register data dependencies and treat ``Fence`` as a full
barrier (issue stalls until buffers drain / older operations complete) —
the §7 extension hook.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError
from ..stats.rng import RandomSource
from .isa import Fence, FetchAdd, Load, Operation, Store, ThreadProgram, is_memory_operation
from .memory import SharedMemory

__all__ = [
    "Core",
    "SCCore",
    "TSOCore",
    "PSOCore",
    "WOCore",
    "CORE_KINDS",
    "make_core",
    "DEFAULT_DRAIN_PROBABILITY",
    "DEFAULT_WINDOW_SIZE",
]

#: Per-cycle probability that a buffered store drains to memory.
DEFAULT_DRAIN_PROBABILITY = 0.5

#: Out-of-order issue window size for :class:`WOCore`.
DEFAULT_WINDOW_SIZE = 8

#: Store-buffer capacity (drains are forced when full).
DEFAULT_BUFFER_CAPACITY = 8


class Core:
    """Base class: program state, registers, and the per-cycle interface.

    A core makes progress only on cycles when the machine's scheduler
    calls :meth:`step`; :meth:`background_step` runs every cycle regardless
    (store buffers keep draining even while the pipeline is stalled by the
    scheduler, as on real hardware).
    """

    def __init__(
        self,
        name: str,
        program: ThreadProgram,
        memory: SharedMemory,
        source: RandomSource,
    ):
        self.name = name
        self.program = program
        self.memory = memory
        self.source = source
        self.registers: dict[str, int] = {register: 0 for register in program.registers()}
        self._pc = 0

    # ------------------------------------------------------------------

    @property
    def pc(self) -> int:
        """Index of the next not-yet-issued operation."""
        return self._pc

    @property
    def retired(self) -> bool:
        """Whether every operation has issued (buffers may still hold stores)."""
        return self._pc >= len(self.program)

    @property
    def done(self) -> bool:
        """Whether the core has fully finished (including buffer drain)."""
        return self.retired and self.pending_stores() == 0

    def pending_stores(self) -> int:
        """Stores executed but not yet globally visible."""
        return 0

    def step(self, cycle: int) -> None:
        """Advance the pipeline by one scheduled cycle."""
        raise NotImplementedError

    def background_step(self, cycle: int) -> None:
        """Work that continues even on unscheduled cycles (buffer drain)."""

    def flush(self, cycle: int) -> None:
        """Force all pending stores to commit (end-of-run drain)."""

    # ------------------------------------------------------------------

    def _execute_local(self, operation: Operation) -> None:
        from .isa import Add, AddImmediate, LoadImmediate, Nop

        if isinstance(operation, LoadImmediate):
            self.registers[operation.dst] = operation.value
        elif isinstance(operation, AddImmediate):
            self.registers[operation.dst] = self.registers[operation.src] + operation.value
        elif isinstance(operation, Add):
            self.registers[operation.dst] = (
                self.registers[operation.a] + self.registers[operation.b]
            )
        elif isinstance(operation, Nop):
            pass
        else:  # pragma: no cover - guarded by callers
            raise SimulationError(f"not a local operation: {operation}")

    def _store_value(self, operation: Store) -> int:
        if operation.src is not None:
            return self.registers[operation.src]
        assert operation.value is not None
        return operation.value

    def _execute_atomic(self, operation: FetchAdd, cycle: int) -> None:
        """One indivisible read-modify-write against shared memory."""
        old = self.memory.read(operation.location, cycle, self.name)
        self.registers[operation.dst] = old
        self.memory.commit(operation.location, old + operation.value, cycle, self.name)


class SCCore(Core):
    """Sequentially consistent core: strictly in order, immediate commits."""

    def step(self, cycle: int) -> None:
        if self.retired:
            return
        operation = self.program.operations[self._pc]
        if isinstance(operation, Load):
            self.registers[operation.dst] = self.memory.read(operation.location, cycle, self.name)
        elif isinstance(operation, Store):
            self.memory.commit(operation.location, self._store_value(operation), cycle, self.name)
        elif isinstance(operation, FetchAdd):
            self._execute_atomic(operation, cycle)
        elif isinstance(operation, Fence):
            pass  # nothing is ever pending on an SC core
        else:
            self._execute_local(operation)
        self._pc += 1


class TSOCore(Core):
    """Total Store Order core: FIFO store buffer + store-to-load forwarding."""

    def __init__(
        self,
        name: str,
        program: ThreadProgram,
        memory: SharedMemory,
        source: RandomSource,
        drain_probability: float = DEFAULT_DRAIN_PROBABILITY,
        buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
    ):
        super().__init__(name, program, memory, source)
        if not 0.0 <= drain_probability <= 1.0:
            raise SimulationError(f"drain probability must be in [0, 1], got {drain_probability}")
        if buffer_capacity < 1:
            raise SimulationError(f"buffer capacity must be >= 1, got {buffer_capacity}")
        self._drain_probability = drain_probability
        self._capacity = buffer_capacity
        self._buffer: deque[tuple[str, int]] = deque()

    def pending_stores(self) -> int:
        return len(self._buffer)

    def background_step(self, cycle: int) -> None:
        if self._buffer and self.source.bernoulli(self._drain_probability):
            self._drain_one(cycle)

    def _drain_one(self, cycle: int) -> None:
        location, value = self._buffer.popleft()
        self.memory.commit(location, value, cycle, self.name)

    def flush(self, cycle: int) -> None:
        while self._buffer:
            self._drain_one(cycle)

    def _forward(self, location: str) -> int | None:
        """Newest buffered value for a location (store-to-load forwarding)."""
        for buffered_location, value in reversed(self._buffer):
            if buffered_location == location:
                return value
        return None

    def step(self, cycle: int) -> None:
        if self.retired:
            return
        operation = self.program.operations[self._pc]
        if isinstance(operation, Fence):
            if self._buffer:
                self._drain_one(cycle)  # stall, draining one entry per cycle
                return
        elif isinstance(operation, FetchAdd):
            if self._buffer:
                self._drain_one(cycle)  # lock prefix: full drain first
                return
            self._execute_atomic(operation, cycle)
            self._pc += 1
            return
        elif isinstance(operation, Store):
            if len(self._buffer) >= self._capacity:
                self._drain_one(cycle)  # structural stall
                return
            self._buffer.append((operation.location, self._store_value(operation)))
        elif isinstance(operation, Load):
            forwarded = self._forward(operation.location)
            if forwarded is not None:
                self.registers[operation.dst] = forwarded
            else:
                self.registers[operation.dst] = self.memory.read(
                    operation.location, cycle, self.name
                )
        else:
            self._execute_local(operation)
        self._pc += 1


class PSOCore(TSOCore):
    """Partial Store Order core: drains may reorder across addresses.

    The buffer is still a single queue for capacity purposes, but a drain
    commits the oldest entry of a *uniformly random buffered address*, so
    stores to distinct locations become visible out of order (the ST→ST
    relaxation); per-address FIFO order is preserved.
    """

    def _drain_one(self, cycle: int) -> None:
        locations = list({location for location, _ in self._buffer})
        chosen = locations[self.source.uniform_int(0, len(locations) - 1)]
        for index, (location, value) in enumerate(self._buffer):
            if location == chosen:
                del self._buffer[index]
                self.memory.commit(location, value, cycle, self.name)
                return
        raise SimulationError("buffered address vanished during drain")  # pragma: no cover


class WOCore(Core):
    """Weakly ordered core: out-of-order issue from a bounded window.

    Each scheduled cycle, one uniformly random *ready* operation from the
    next ``window_size`` un-issued operations executes.  Ready means: all
    source registers produced, no older un-issued operation on the same
    address, no older un-issued fence (and a fence itself waits for all
    older operations).  Stores commit at execution (reordering comes from
    the issue order itself).
    """

    def __init__(
        self,
        name: str,
        program: ThreadProgram,
        memory: SharedMemory,
        source: RandomSource,
        window_size: int = DEFAULT_WINDOW_SIZE,
    ):
        super().__init__(name, program, memory, source)
        if window_size < 1:
            raise SimulationError(f"window size must be >= 1, got {window_size}")
        self._window_size = window_size
        self._issued = [False] * len(program)
        self._register_ready: dict[str, bool] = {
            register: True for register in program.registers()
        }
        # A register written by a not-yet-issued op is "owned" by that op.
        self._writer: dict[str, list[int]] = {}
        for index, operation in enumerate(program.operations):
            for register in operation.writes():
                self._writer.setdefault(register, []).append(index)

    @property
    def retired(self) -> bool:
        return all(self._issued)

    @property
    def pc(self) -> int:
        for index, issued in enumerate(self._issued):
            if not issued:
                return index
        return len(self.program)

    def _ready(self, index: int) -> bool:
        operation = self.program.operations[index]
        older_unissued = [
            i for i in range(index) if not self._issued[i]
        ]
        if operation.is_fence or operation.is_atomic:
            return not older_unissued
        for i in older_unissued:
            older = self.program.operations[i]
            if older.is_fence or older.is_atomic:
                return False
            if (
                operation.address is not None
                and older.address is not None
                and older.address == operation.address
            ):
                return False
        # True register dependencies: every read must come from an issued
        # writer.  Anti/output dependencies (WAR/WAW) are also enforced —
        # the core has no register renaming, so reusing an architectural
        # register serialises around it.
        for register in operation.reads():
            writers = [i for i in self._writer.get(register, []) if i < index]
            if writers and not self._issued[max(writers)]:
                return False
        for register in operation.writes():
            for i in older_unissued:
                older = self.program.operations[i]
                if register in older.reads() or register in older.writes():
                    return False
        return True

    def step(self, cycle: int) -> None:
        if self.retired:
            return
        window_start = self.pc
        window = [
            index
            for index in range(window_start, min(window_start + self._window_size, len(self.program)))
            if not self._issued[index]
        ]
        ready = [index for index in window if self._ready(index)]
        if not ready:  # pragma: no cover - straight-line code always has index 0 ready
            return
        index = ready[self.source.uniform_int(0, len(ready) - 1)]
        operation = self.program.operations[index]
        if isinstance(operation, Load):
            self.registers[operation.dst] = self.memory.read(operation.location, cycle, self.name)
        elif isinstance(operation, Store):
            self.memory.commit(operation.location, self._store_value(operation), cycle, self.name)
        elif isinstance(operation, FetchAdd):
            self._execute_atomic(operation, cycle)
        elif isinstance(operation, Fence):
            pass
        else:
            self._execute_local(operation)
        self._issued[index] = True


#: Registry mapping memory-model names to core classes.
CORE_KINDS: dict[str, type[Core]] = {
    "SC": SCCore,
    "TSO": TSOCore,
    "PSO": PSOCore,
    "WO": WOCore,
}


def make_core(
    model_name: str,
    name: str,
    program: ThreadProgram,
    memory: SharedMemory,
    source: RandomSource,
    **options,
) -> Core:
    """Instantiate the core class implementing ``model_name``."""
    try:
        kind = CORE_KINDS[model_name.upper()]
    except KeyError:
        known = ", ".join(sorted(CORE_KINDS))
        raise SimulationError(f"no core model named {model_name!r}; known: {known}") from None
    return kind(name, program, memory, source, **options)
