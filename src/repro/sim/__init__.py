"""The multiprocessor simulator substrate.

The abstract model of the paper idealises real hardware; this subpackage
builds that hardware in miniature — per-model cores with the
microarchitectural relaxation that motivates each memory model (store
buffers for TSO/PSO, out-of-order issue for WO), a shared memory with
store atomicity, and interleaving schedulers — so the canonical bug can be
*run*, not just analysed.
"""

from .cpu import (
    CORE_KINDS,
    DEFAULT_DRAIN_PROBABILITY,
    DEFAULT_WINDOW_SIZE,
    Core,
    PSOCore,
    SCCore,
    TSOCore,
    WOCore,
    make_core,
)
from .executor import CanonicalBugResult, run_canonical_bug
from .isa import (
    Add,
    AddImmediate,
    Fence,
    FetchAdd,
    Load,
    LoadImmediate,
    Nop,
    Operation,
    Store,
    ThreadProgram,
    is_memory_operation,
)
from .machine import Machine, MachineResult
from .measurement import WindowMeasurement, extract_windows, measure_critical_windows
from .memory import AccessKind, AccessRecord, SharedMemory
from .programs import (
    SHARED_COUNTER,
    canonical_increment,
    canonical_increment_atomic,
    canonical_increment_fenced,
    padded_body,
    sample_body_types,
)
from .scheduler import (
    GeometricLaunchScheduler,
    LockStepScheduler,
    RandomScheduler,
    Scheduler,
)

__all__ = [
    "AccessKind",
    "AccessRecord",
    "Add",
    "AddImmediate",
    "CORE_KINDS",
    "CanonicalBugResult",
    "Core",
    "DEFAULT_DRAIN_PROBABILITY",
    "DEFAULT_WINDOW_SIZE",
    "Fence",
    "FetchAdd",
    "GeometricLaunchScheduler",
    "Load",
    "LoadImmediate",
    "LockStepScheduler",
    "Machine",
    "MachineResult",
    "Nop",
    "Operation",
    "PSOCore",
    "RandomScheduler",
    "SCCore",
    "SHARED_COUNTER",
    "SharedMemory",
    "Scheduler",
    "Store",
    "TSOCore",
    "ThreadProgram",
    "WOCore",
    "WindowMeasurement",
    "canonical_increment",
    "canonical_increment_atomic",
    "canonical_increment_fenced",
    "is_memory_operation",
    "extract_windows",
    "make_core",
    "measure_critical_windows",
    "padded_body",
    "run_canonical_bug",
    "sample_body_types",
]
