"""Shared memory with a global access log.

The simulated multiprocessor uses a single flat memory (store atomicity is
assumed, exactly as the paper assumes away non-atomic stores in §2.1).
Every commit and read is logged with its cycle, which the executor uses to
reconstruct interleavings and the tests use to assert ordering invariants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessKind", "AccessRecord", "SharedMemory"]


class AccessKind:
    """Log-record kinds (plain constants; no enum overhead in hot loops)."""

    READ = "READ"
    COMMIT = "COMMIT"


@dataclass(frozen=True)
class AccessRecord:
    """One logged memory access."""

    cycle: int
    core: str
    kind: str
    location: str
    value: int

    def __str__(self) -> str:
        return f"[{self.cycle:>4}] {self.core}: {self.kind} {self.location} = {self.value}"


class SharedMemory:
    """Flat symbolic-address memory, zero-initialised, with an access log."""

    def __init__(self, initial: dict[str, int] | None = None, log_accesses: bool = False):
        self._values: dict[str, int] = dict(initial or {})
        self._log: list[AccessRecord] = []
        self._log_accesses = log_accesses

    def read(self, location: str, cycle: int, core: str) -> int:
        """Read a location (uninitialised locations read 0)."""
        value = self._values.get(location, 0)
        if self._log_accesses:
            self._log.append(AccessRecord(cycle, core, AccessKind.READ, location, value))
        return value

    def commit(self, location: str, value: int, cycle: int, core: str) -> None:
        """Make a store globally visible."""
        self._values[location] = value
        if self._log_accesses:
            self._log.append(AccessRecord(cycle, core, AccessKind.COMMIT, location, value))

    def peek(self, location: str) -> int:
        """Read without logging (for assertions and final-state checks)."""
        return self._values.get(location, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of the current memory contents."""
        return dict(self._values)

    @property
    def log(self) -> list[AccessRecord]:
        return list(self._log)

    def commits_to(self, location: str) -> list[AccessRecord]:
        """All commit records for one location, in time order."""
        return [
            record
            for record in self._log
            if record.kind == AccessKind.COMMIT and record.location == location
        ]
