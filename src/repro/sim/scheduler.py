"""Interleaving policies for the simulated multiprocessor.

The abstract model's *shift process* (§5) captures the relative progress
of threads with geometric offsets; on the machine side the scheduler plays
that role.  Three policies:

* :class:`LockStepScheduler` — every core steps every cycle (the paper's
  "instructions begin and end synchronously across all threads").
* :class:`RandomScheduler` — each cycle, every core independently steps
  with a given probability (uniform asynchrony).
* :class:`GeometricLaunchScheduler` — core ``k`` begins executing only
  after a geometric delay, then runs lock-step: the direct machine
  analogue of Definition 1's shifts, used by the canonical-bug bench to
  tie the machine results back to the shift model.
"""

from __future__ import annotations

from ..stats.rng import RandomSource

__all__ = [
    "Scheduler",
    "LockStepScheduler",
    "RandomScheduler",
    "GeometricLaunchScheduler",
]


class Scheduler:
    """Decides which cores make pipeline progress on each cycle."""

    def prepare(self, core_count: int, source: RandomSource) -> None:
        """Called once before the run starts."""

    def scheduled(self, core_index: int, cycle: int, source: RandomSource) -> bool:
        """Whether core ``core_index`` steps on ``cycle``."""
        raise NotImplementedError


class LockStepScheduler(Scheduler):
    """All cores step every cycle."""

    def scheduled(self, core_index: int, cycle: int, source: RandomSource) -> bool:
        return True


class RandomScheduler(Scheduler):
    """Each core independently steps with probability ``rate`` per cycle."""

    def __init__(self, rate: float = 0.5):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self._rate = rate

    def scheduled(self, core_index: int, cycle: int, source: RandomSource) -> bool:
        return source.bernoulli(self._rate)


class GeometricLaunchScheduler(Scheduler):
    """Core ``k`` starts after an i.i.d. geometric delay, then runs lock-step.

    ``Pr[delay = d] = (1 - beta) * beta**d`` — Definition 1's shift law.
    """

    def __init__(self, beta: float = 0.5):
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must lie in [0, 1), got {beta}")
        self._beta = beta
        self._delays: list[int] = []

    def prepare(self, core_count: int, source: RandomSource) -> None:
        self._delays = [source.geometric(self._beta) for _ in range(core_count)]

    @property
    def beta(self) -> float:
        """The geometric launch-delay ratio (Definition 1's β)."""
        return self._beta

    @property
    def delays(self) -> list[int]:
        """The sampled launch delays (available after :meth:`prepare`)."""
        return list(self._delays)

    def scheduled(self, core_index: int, cycle: int, source: RandomSource) -> bool:
        return cycle >= self._delays[core_index]
