"""Workload builders: the canonical bug of §2.2 and body padding.

The canonical atomicity violation is the paper's running example::

    Thread k:   loc = x;  loc = loc + 1;  x = loc;

Each thread increments the shared counter ``x`` without synchronisation;
the programmer intent is a final value of ``n`` for ``n`` threads, and any
smaller value means the bug manifested.

Following §6 ("all threads are assumed to initially be identical copies of
a single program"), the body *type sequence* is drawn once per experiment
and shared by every thread; the body locations are thread-private
(``t<k>_a<i>``), honouring the model's distinct-location assumption, so
bodies stress each core's buffers without creating cross-thread traffic.
"""

from __future__ import annotations

from ..stats.rng import RandomSource
from .isa import AddImmediate, Fence, FetchAdd, Load, Operation, Store, ThreadProgram

__all__ = [
    "sample_body_types",
    "padded_body",
    "canonical_increment",
    "canonical_increment_fenced",
    "canonical_increment_atomic",
    "SHARED_COUNTER",
]

#: The shared location the canonical bug races on.
SHARED_COUNTER = "x"


def sample_body_types(
    length: int, source: RandomSource, store_probability: float = 0.5
) -> list[bool]:
    """Draw one shared body type sequence (``True`` marks a store), §3.1.1."""
    return [source.bernoulli(store_probability) for _ in range(length)]


def padded_body(thread: int, body_types: list[bool]) -> list[Operation]:
    """Materialise a body type sequence on thread-private locations."""
    operations: list[Operation] = []
    for index, is_store in enumerate(body_types):
        location = f"t{thread}_a{index}"
        if is_store:
            operations.append(Store(location, value=1))
        else:
            operations.append(Load("scratch", location))
    return operations


def canonical_increment(thread: int, body_types: list[bool] = ()) -> ThreadProgram:
    """One thread of the canonical §2.2 bug, with optional body padding.

    The critical section is ``loc = LD x; loc = loc + 1; ST x = loc`` on a
    thread-private register.
    """
    operations = padded_body(thread, list(body_types))
    operations += [
        Load("loc", SHARED_COUNTER),
        AddImmediate("loc", "loc", 1),
        Store(SHARED_COUNTER, src="loc"),
    ]
    return ThreadProgram(f"T{thread}", tuple(operations))


def canonical_increment_atomic(thread: int, body_types: list[bool] = ()) -> ThreadProgram:
    """The *fixed* canonical increment: one atomic fetch-and-add.

    Collapsing the racy load/increment/store into a single indivisible
    read-modify-write removes the critical window entirely — the machine
    benches use this as the positive control: the final counter always
    equals the thread count, under every core model.
    """
    operations = padded_body(thread, list(body_types))
    operations.append(FetchAdd("loc", SHARED_COUNTER, 1))
    return ThreadProgram(f"T{thread}", tuple(operations))


def canonical_increment_fenced(thread: int, body_types: list[bool] = ()) -> ThreadProgram:
    """The canonical increment bracketed by fences (§7's extension).

    Fences pin the critical pair against reordering with the body — the
    machine-level counterpart of the "fences make concurrency bugs less
    likely" remark.  They do *not* fix the race itself: the critical
    sections of different threads can still interleave.
    """
    operations = padded_body(thread, list(body_types))
    operations += [
        Fence(),
        Load("loc", SHARED_COUNTER),
        AddImmediate("loc", "loc", 1),
        Store(SHARED_COUNTER, src="loc"),
        Fence(),
    ]
    return ThreadProgram(f"T{thread}", tuple(operations))
