"""Experiment drivers for the machine substrate (experiment E10).

:func:`run_canonical_bug` executes the §2.2 counter-increment race on the
simulated multiprocessor many times and reports how often it manifests
(final counter below the thread count).  The benches use it to check the
machine-level ordering of the memory models against the abstract model's
predictions.

The trial loop is a shardable kernel: the trial budget splits into
seed-disciplined shards (one child stream per shard, pre-spawned trial
streams within a shard) that fan out over worker processes via
:mod:`repro.stats.parallel` and merge through
:func:`repro.stats.montecarlo.merge_categorical` — so machine experiments
scale across cores while staying bit-reproducible for a fixed
``(seed, shards)``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass
from functools import partial
from pathlib import Path

from ..runconfig import UNSET, RunConfig, resolve_run_config
from ..stats.checkpoint import ShardCheckpoint
from ..stats.intervals import Proportion, wilson_interval
from ..stats.montecarlo import CategoricalResult, merge_categorical
from ..stats.parallel import ShardPlan, resolve_shards, run_sharded
from ..stats.rng import RandomSource, iter_batches
from ..stats.transport import CategoricalLayout
from .isa import ThreadProgram
from .machine import Machine
from .programs import (
    SHARED_COUNTER,
    canonical_increment,
    canonical_increment_atomic,
    canonical_increment_fenced,
    sample_body_types,
)
from .scheduler import GeometricLaunchScheduler, Scheduler

__all__ = ["CanonicalBugResult", "run_canonical_bug"]

#: Trial streams are pre-spawned from the shard stream in blocks of this
#: size (two streams per trial: body sampling and machine execution).
TRIAL_SPAWN_BATCH = 1024

#: Trials per whole-array kernel call on the vectorized backend.
VECTORIZED_TRIAL_BATCH = 4096


def _machine_backend_beta(
    model_name: str,
    scheduler: Scheduler | None,
    fenced: bool,
    atomic: bool,
    core_options: dict[str, object],
) -> float:
    """Validate vectorized-backend constraints; returns the launch β.

    The vectorized machine kernel covers the racy canonical workload on
    SC/TSO/PSO under the geometric-launch scheduler only (see
    :mod:`repro.kernels.machine`); everything else needs the scalar
    machine, so ask for it by name rather than silently falling back.
    """
    from ..errors import SimulationError
    from ..kernels.machine import SUPPORTED_MACHINE_MODELS

    if model_name.upper() not in SUPPORTED_MACHINE_MODELS:
        known = ", ".join(SUPPORTED_MACHINE_MODELS)
        raise SimulationError(
            f"backend='vectorized' supports {known}; {model_name!r} needs "
            "backend='scalar'"
        )
    if fenced or atomic:
        raise SimulationError(
            "backend='vectorized' covers only the racy canonical variant; "
            "use backend='scalar' for fenced/atomic programs"
        )
    if scheduler is not None and not isinstance(scheduler, GeometricLaunchScheduler):
        raise SimulationError(
            "backend='vectorized' requires the geometric-launch scheduler "
            f"(got {type(scheduler).__name__}); use backend='scalar'"
        )
    unknown = set(core_options) - {"drain_probability", "buffer_capacity"}
    if unknown:
        raise SimulationError(
            "backend='vectorized' accepts only drain_probability/"
            f"buffer_capacity core options (got {sorted(unknown)}); "
            "use backend='scalar'"
        )
    return scheduler.beta if scheduler is not None else GeometricLaunchScheduler().beta


@dataclass(frozen=True)
class CanonicalBugResult:
    """Outcome statistics of the canonical-bug machine experiment."""

    model: str
    threads: int
    trials: int
    final_values: dict[int, int]
    confidence: float

    @property
    def manifestations(self) -> int:
        """Trials whose final counter fell short of the thread count."""
        return sum(count for value, count in self.final_values.items() if value < self.threads)

    @property
    def manifestation(self) -> Proportion:
        """Manifestation probability with confidence interval."""
        return wilson_interval(self.manifestations, self.trials, self.confidence)

    @property
    def survival(self) -> Proportion:
        """Non-manifestation (the machine analogue of the paper's Pr[A])."""
        return wilson_interval(
            self.trials - self.manifestations, self.trials, self.confidence
        )

    def __str__(self) -> str:
        return (
            f"{self.model} n={self.threads}: bug manifests {self.manifestation} "
            f"(final values {dict(sorted(self.final_values.items()))})"
        )


def _canonical_bug_shard(
    source: RandomSource,
    shard_trials: int,
    model_name: str,
    threads: int,
    body_length: int,
    scheduler: Scheduler | None,
    builder: Callable[..., ThreadProgram],
    confidence: float,
    core_options: dict[str, object],
) -> CategoricalResult:
    """Run one shard of canonical-bug trials; returns the outcome PMF.

    The scheduler is constructed once per shard (``Machine.run`` re-prepares
    it per trial) and each trial's two streams — body sampling and machine
    execution — come from one pre-spawned block of children, rather than
    paying two ``SeedSequence`` spawn calls inside the hot loop.
    """
    if scheduler is None:
        scheduler = GeometricLaunchScheduler()
    outcomes: Counter[int] = Counter()
    for batch in iter_batches(shard_trials, TRIAL_SPAWN_BATCH):
        streams = source.spawn(2 * batch)
        for index in range(batch):
            body_types = sample_body_types(body_length, streams[2 * index])
            programs = [builder(thread, body_types) for thread in range(threads)]
            machine = Machine(model_name, programs, scheduler=scheduler, **core_options)
            result = machine.run(streams[2 * index + 1])
            outcomes[result.location(SHARED_COUNTER)] += 1
    return CategoricalResult(dict(outcomes), shard_trials, confidence, None)


def _canonical_bug_vectorized_shard(
    source: RandomSource,
    shard_trials: int,
    model_name: str,
    threads: int,
    body_length: int,
    beta: float,
    confidence: float,
    core_options: dict[str, object],
) -> CategoricalResult:
    """One shard of canonical-bug trials on the whole-array kernel.

    Each batch consumes one child stream (mirroring the engine's event
    kernels), so results are bit-reproducible for fixed
    ``(seed, shards, backend)`` at any worker count.  Imported lazily:
    :mod:`repro.kernels` imports this package during initialisation.
    """
    from ..kernels.machine import canonical_bug_batch

    outcomes: Counter[int] = Counter()
    for batch in iter_batches(shard_trials, VECTORIZED_TRIAL_BATCH):
        outcomes.update(canonical_bug_batch(
            source.child(), batch, model_name, threads=threads,
            body_length=body_length, beta=beta, **core_options,
        ))
    return CategoricalResult(dict(outcomes), shard_trials, confidence, None)


def run_canonical_bug(
    model_name: str,
    threads: int,
    trials: int,
    seed: int | None = 0,
    body_length: int = 8,
    scheduler: Scheduler | None = None,
    fenced: bool = False,
    atomic: bool = False,
    confidence: float = 0.99,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    fingerprint: str | None = UNSET,
    cache: object | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    backend: str = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
    **core_options,
) -> CanonicalBugResult:
    """Run the canonical increment race ``trials`` times on the machine.

    Parameters
    ----------
    model_name:
        Core model (``"SC"``, ``"TSO"``, ``"PSO"``, ``"WO"``).
    threads:
        Number of racing incrementers.
    body_length:
        Private-body padding per thread (per-trial random types, mirroring
        §3.1.1's program generation).
    scheduler:
        Interleaving policy; defaults to the geometric-launch scheduler,
        the machine analogue of the shift process.
    fenced:
        Bracket each critical section with fences (§7 extension).
    atomic:
        Replace the racy load/increment/store with one atomic fetch-and-add
        (the bug's fix; mutually exclusive with ``fenced``).
    workers, shards:
        Fan the trial budget out over seed-disciplined shards on a process
        pool (:mod:`repro.stats.parallel`); fixed ``(seed, shards)`` is
        bit-reproducible at any worker count.  ``shards=None`` defaults to
        the fixed :data:`~repro.stats.parallel.DEFAULT_SHARDS` whenever
        parallelism is requested (never the worker count), and to a
        single shard for the serial ``workers=1`` case.
    retries, timeout, checkpoint:
        Fault-tolerance options (per-shard retry, per-shard pooled
        timeout, resumable shard journal); see
        :func:`repro.stats.parallel.run_sharded`.  The checkpoint key is
        salted with the model/threads/variant, so one journal file can
        hold several machine experiments.  Since the v2 key format the
        key also folds in the kernel fingerprint (derived automatically,
        or passed via ``fingerprint=``), which distinguishes the two
        backends — the label carries no ``backend=`` salt.
    fingerprint, cache:
        The v2 keying and caching channel: ``fingerprint`` overrides the
        derived kernel fingerprint; ``cache`` enables the
        content-addressed shard result cache (``"auto"``, a directory,
        or a :class:`repro.cache.ShardStore` — see ``docs/CACHING.md``).
    manifest, trace, progress:
        Observability knobs (run manifest JSON, JSONL span trace, live
        stderr progress); read-only with respect to the result — see
        ``docs/OBSERVABILITY.md``.
    backend:
        ``"scalar"`` (default) runs the cycle-accurate object machine;
        ``"vectorized"`` runs the whole-array kernel of
        :mod:`repro.kernels.machine` — statistically equivalent,
        typically an order of magnitude faster, but restricted to the
        racy variant on SC/TSO/PSO under the geometric-launch scheduler
        (anything else raises).  The machine has no fused kernel, so
        ``backend="fused"`` is rejected explicitly.  See
        ``docs/KERNELS.md``.
    rng_plan, transport:
        The shard-stream derivation (``"spawn"`` default / ``"philox"``
        counter-addressed fast path) and the shard result channel; see
        :class:`repro.stats.parallel.ShardPlan` and
        :mod:`repro.stats.transport`.
    config:
        A :class:`repro.runconfig.RunConfig` supplying every execution
        knob above in one validated record; the per-knob keywords are
        deprecated aliases that override the matching config field when
        passed explicitly.  The machine is a scalar-default driver
        without a fused kernel, so the config resolves with
        ``allowed_backends=("scalar", "vectorized")``.
    core_options:
        Forwarded to the core constructor (e.g. ``drain_probability``).
    """
    if threads < 2:
        raise ValueError(f"the race needs at least 2 threads, got {threads}")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if fenced and atomic:
        raise ValueError("fenced and atomic variants are mutually exclusive")
    if atomic:
        builder = canonical_increment_atomic
    elif fenced:
        builder = canonical_increment_fenced
    else:
        builder = canonical_increment
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, fingerprint=fingerprint,
                             cache=cache, manifest=manifest, trace=trace,
                             progress=progress, backend=backend,
                             rng_plan=rng_plan, transport=transport,
                             ).resolve(default_backend="scalar",
                                       allowed_backends=("scalar", "vectorized"))
    if cfg.backend == "vectorized":
        beta = _machine_backend_beta(model_name, scheduler, fenced, atomic,
                                     core_options)
        kernel = partial(
            _canonical_bug_vectorized_shard,
            model_name=model_name,
            threads=threads,
            body_length=body_length,
            beta=beta,
            confidence=confidence,
            core_options=core_options,
        )
    else:
        kernel = partial(
            _canonical_bug_shard,
            model_name=model_name,
            threads=threads,
            body_length=body_length,
            scheduler=scheduler,
            builder=builder,
            confidence=confidence,
            core_options=core_options,
        )
    plan = ShardPlan(trials, resolve_shards(cfg.workers, cfg.shards), seed,
                     cfg.rng_plan)
    variant = "atomic" if atomic else ("fenced" if fenced else "racy")
    label = (f"canonical:{model_name}:n={threads}:body={body_length}"
             f":variant={variant}")
    observer = cfg.observer(label)

    def build(parts: list[CategoricalResult]) -> CanonicalBugResult:
        merged = merge_categorical(parts)
        return CanonicalBugResult(
            model=model_name,
            threads=threads,
            trials=trials,
            final_values=dict(merged.counts),
            confidence=confidence,
        )

    layout = CategoricalLayout(confidence)
    if observer is None:
        return build(run_sharded(
            kernel, plan, cfg.workers, checkpoint_label=label,
            layout=layout, **cfg.engine_options(),
        ))
    with observer.span("run"):
        with observer.span("shards"):
            parts = run_sharded(
                kernel, plan, cfg.workers, checkpoint_label=label,
                observer=observer, layout=layout, **cfg.engine_options(),
            )
        with observer.span("merge"):
            result = build(parts)
    observer.finish(result)
    return result
