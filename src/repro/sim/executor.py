"""Experiment drivers for the machine substrate (experiment E10).

:func:`run_canonical_bug` executes the §2.2 counter-increment race on the
simulated multiprocessor many times and reports how often it manifests
(final counter below the thread count).  The benches use it to check the
machine-level ordering of the memory models against the abstract model's
predictions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..stats.intervals import Proportion, wilson_interval
from ..stats.rng import RandomSource
from .machine import Machine
from .programs import (
    SHARED_COUNTER,
    canonical_increment,
    canonical_increment_atomic,
    canonical_increment_fenced,
    sample_body_types,
)
from .scheduler import GeometricLaunchScheduler, Scheduler

__all__ = ["CanonicalBugResult", "run_canonical_bug"]


@dataclass(frozen=True)
class CanonicalBugResult:
    """Outcome statistics of the canonical-bug machine experiment."""

    model: str
    threads: int
    trials: int
    final_values: dict[int, int]
    confidence: float

    @property
    def manifestations(self) -> int:
        """Trials whose final counter fell short of the thread count."""
        return sum(count for value, count in self.final_values.items() if value < self.threads)

    @property
    def manifestation(self) -> Proportion:
        """Manifestation probability with confidence interval."""
        return wilson_interval(self.manifestations, self.trials, self.confidence)

    @property
    def survival(self) -> Proportion:
        """Non-manifestation (the machine analogue of the paper's Pr[A])."""
        return wilson_interval(
            self.trials - self.manifestations, self.trials, self.confidence
        )

    def __str__(self) -> str:
        return (
            f"{self.model} n={self.threads}: bug manifests {self.manifestation} "
            f"(final values {dict(sorted(self.final_values.items()))})"
        )


def run_canonical_bug(
    model_name: str,
    threads: int,
    trials: int,
    seed: int | None = 0,
    body_length: int = 8,
    scheduler: Scheduler | None = None,
    fenced: bool = False,
    atomic: bool = False,
    confidence: float = 0.99,
    **core_options,
) -> CanonicalBugResult:
    """Run the canonical increment race ``trials`` times on the machine.

    Parameters
    ----------
    model_name:
        Core model (``"SC"``, ``"TSO"``, ``"PSO"``, ``"WO"``).
    threads:
        Number of racing incrementers.
    body_length:
        Private-body padding per thread (per-trial random types, mirroring
        §3.1.1's program generation).
    scheduler:
        Interleaving policy; defaults to the geometric-launch scheduler,
        the machine analogue of the shift process.
    fenced:
        Bracket each critical section with fences (§7 extension).
    atomic:
        Replace the racy load/increment/store with one atomic fetch-and-add
        (the bug's fix; mutually exclusive with ``fenced``).
    core_options:
        Forwarded to the core constructor (e.g. ``drain_probability``).
    """
    if threads < 2:
        raise ValueError(f"the race needs at least 2 threads, got {threads}")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if fenced and atomic:
        raise ValueError("fenced and atomic variants are mutually exclusive")
    root = RandomSource(seed)
    if atomic:
        builder = canonical_increment_atomic
    elif fenced:
        builder = canonical_increment_fenced
    else:
        builder = canonical_increment
    outcomes: Counter[int] = Counter()
    for _ in range(trials):
        trial_source = root.child()
        body_types = sample_body_types(body_length, trial_source.child())
        programs = [builder(thread, body_types) for thread in range(threads)]
        machine = Machine(
            model_name,
            programs,
            scheduler=scheduler if scheduler is not None else GeometricLaunchScheduler(),
            **core_options,
        )
        result = machine.run(trial_source.child())
        outcomes[result.location(SHARED_COUNTER)] += 1
    return CanonicalBugResult(
        model=model_name,
        threads=threads,
        trials=trials,
        final_values=dict(outcomes),
        confidence=confidence,
    )
