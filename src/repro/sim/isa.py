"""A tiny register-machine ISA for the multiprocessor substrate.

The abstract model of the paper reduces programs to LD/ST streams; the
mechanistic simulator needs just enough more to *run* the canonical
atomicity violation of §2.2 and the standard litmus tests:

* ``Load`` / ``Store`` — the shared-memory operations,
* ``LoadImmediate`` / ``AddImmediate`` / ``Add`` — local register
  arithmetic (line 2 of the canonical bug),
* ``Fence`` — the §7 extension: a full barrier that no memory operation
  may reorder across (and that drains store buffers).

Programs are straight-line (no branches): every workload in the paper and
every classic litmus shape is loop-free, and straight-line code keeps the
litmus enumerator exact.

Registers are named strings (``"r0"``, ``"r1"``, …); memory locations are
symbolic strings (``"x"``, ``"y"``).  Values are Python ints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = [
    "Operation",
    "Load",
    "Store",
    "LoadImmediate",
    "Add",
    "AddImmediate",
    "Fence",
    "FetchAdd",
    "Nop",
    "ThreadProgram",
    "is_memory_operation",
]


@dataclass(frozen=True)
class Operation:
    """Base class for ISA operations.

    Subclasses declare their register reads/writes so cores can honour
    data dependencies, and whether they touch memory so cores can honour
    the memory model's ordering rules.
    """

    def reads(self) -> tuple[str, ...]:
        """Registers this operation reads."""
        return ()

    def writes(self) -> tuple[str, ...]:
        """Registers this operation writes."""
        return ()

    @property
    def address(self) -> str | None:
        """Memory location touched, or ``None`` for local operations."""
        return None

    @property
    def is_load(self) -> bool:
        return False

    @property
    def is_store(self) -> bool:
        return False

    @property
    def is_fence(self) -> bool:
        return False

    @property
    def is_atomic(self) -> bool:
        return False


@dataclass(frozen=True)
class Load(Operation):
    """``dst ← memory[location]``."""

    dst: str
    location: str

    def reads(self) -> tuple[str, ...]:
        return ()

    def writes(self) -> tuple[str, ...]:
        return (self.dst,)

    @property
    def address(self) -> str:
        return self.location

    @property
    def is_load(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.dst} = LD {self.location}"


@dataclass(frozen=True)
class Store(Operation):
    """``memory[location] ← src register`` (or an immediate value).

    Exactly one of ``src`` / ``value`` must be given.
    """

    location: str
    src: str | None = None
    value: int | None = None

    def __post_init__(self) -> None:
        if (self.src is None) == (self.value is None):
            raise SimulationError("Store needs exactly one of src register or immediate value")

    def reads(self) -> tuple[str, ...]:
        return (self.src,) if self.src is not None else ()

    @property
    def address(self) -> str:
        return self.location

    @property
    def is_store(self) -> bool:
        return True

    def __str__(self) -> str:
        what = self.src if self.src is not None else str(self.value)
        return f"ST {self.location} = {what}"


@dataclass(frozen=True)
class LoadImmediate(Operation):
    """``dst ← constant`` (purely local)."""

    dst: str
    value: int

    def writes(self) -> tuple[str, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.dst} = {self.value}"


@dataclass(frozen=True)
class Add(Operation):
    """``dst ← a + b`` (purely local)."""

    dst: str
    a: str
    b: str

    def reads(self) -> tuple[str, ...]:
        return (self.a, self.b)

    def writes(self) -> tuple[str, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.dst} = {self.a} + {self.b}"


@dataclass(frozen=True)
class AddImmediate(Operation):
    """``dst ← src + constant`` (line 2 of the canonical bug)."""

    dst: str
    src: str
    value: int

    def reads(self) -> tuple[str, ...]:
        return (self.src,)

    def writes(self) -> tuple[str, ...]:
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.dst} = {self.src} + {self.value}"


@dataclass(frozen=True)
class Fence(Operation):
    """A full memory barrier: nothing reorders across it; buffers drain."""

    @property
    def is_fence(self) -> bool:
        return True

    def __str__(self) -> str:
        return "FENCE"


@dataclass(frozen=True)
class FetchAdd(Operation):
    """``dst ← memory[location]; memory[location] += value`` — atomically.

    The x86 ``lock xadd`` shape: the read and the write are one indivisible
    memory event, and the operation is a full barrier (cores drain their
    store buffers before it and nothing reorders across it).  This is the
    *fix* for the §2.2 canonical bug; the executor's atomic variant of the
    counter race uses it to show the races disappear on every core model.
    """

    dst: str
    location: str
    value: int = 1

    def reads(self) -> tuple[str, ...]:
        return ()

    def writes(self) -> tuple[str, ...]:
        return (self.dst,)

    @property
    def address(self) -> str:
        return self.location

    @property
    def is_atomic(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.dst} = FETCH_ADD {self.location}, {self.value}"


@dataclass(frozen=True)
class Nop(Operation):
    """Does nothing; occupies one issue slot (timing filler)."""

    def __str__(self) -> str:
        return "NOP"


def is_memory_operation(operation: Operation) -> bool:
    """Whether the operation reads or writes shared memory."""
    return operation.is_load or operation.is_store or operation.is_atomic


@dataclass(frozen=True)
class ThreadProgram:
    """A named straight-line program for one hardware thread."""

    name: str
    operations: tuple[Operation, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "operations", tuple(self.operations))

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def memory_operations(self) -> list[Operation]:
        return [operation for operation in self.operations if is_memory_operation(operation)]

    def registers(self) -> set[str]:
        """All registers the program mentions."""
        names: set[str] = set()
        for operation in self.operations:
            names.update(operation.reads())
            names.update(operation.writes())
        return names

    def __str__(self) -> str:
        body = "; ".join(str(operation) for operation in self.operations)
        return f"{self.name}: {body}"
