"""Measuring critical windows on the machine — Theorem 4.1, mechanically.

The abstract model's window length Γ is the time from the critical load's
*read instant* to the critical store's *commit instant*.  Both instants
are directly observable on the simulated multiprocessor through the memory
access log, so the machine can measure its own window distribution and the
benches can compare its *shape* with the abstract laws:

* **SC** — the in-order core reads x, spends one cycle on the add, and
  commits: the window is a deterministic constant (the machine analogue
  of SC's point-mass window law);
* **TSO/PSO** — the store buffer delays the commit by a geometric drain
  wait: the window gains a geometric tail, exactly the abstract model's
  shape for store-buffer relaxations;
* **WO** — out-of-order issue spreads both endpoints.

Overlap of two threads' measured windows is *necessary* for the lost
update (the §3.2 argument made concrete), which
:func:`measure_critical_windows` also checks trial by trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from pathlib import Path

import numpy as np

from ..errors import SimulationError
from ..runconfig import UNSET, RunConfig, resolve_run_config
from ..stats.bootstrap import BootstrapInterval, bootstrap_mean_interval
from ..stats.checkpoint import ShardCheckpoint
from ..stats.parallel import ShardPlan, resolve_shards, run_sharded
from ..stats.transport import WindowLayout
from ..stats.rng import RandomSource, iter_batches
from .executor import TRIAL_SPAWN_BATCH, _machine_backend_beta
from .machine import Machine, MachineResult
from .memory import AccessKind
from .programs import SHARED_COUNTER, canonical_increment, sample_body_types
from .scheduler import GeometricLaunchScheduler, Scheduler

__all__ = ["WindowMeasurement", "measure_critical_windows", "extract_windows"]


def extract_windows(result: MachineResult, threads: int) -> list[tuple[int, int]]:
    """Per-thread (read_cycle, commit_cycle) of the critical accesses.

    Requires the machine to have run with ``log_accesses=True`` on the
    canonical increment workload (one read of and one commit to the shared
    counter per thread).
    """
    reads: dict[str, int] = {}
    commits: dict[str, int] = {}
    for record in result.log:
        if record.location != SHARED_COUNTER:
            continue
        if record.kind == AccessKind.READ and record.core not in reads:
            reads[record.core] = record.cycle
        elif record.kind == AccessKind.COMMIT:
            commits[record.core] = record.cycle  # last commit wins (there is one)
    windows = []
    for thread in range(threads):
        name = f"T{thread}"
        if name not in reads or name not in commits:
            raise SimulationError(f"no critical accesses logged for {name}")
        windows.append((reads[name], commits[name]))
    return windows


def _windows_overlap(windows: list[tuple[int, int]]) -> bool:
    ordered = sorted(windows)
    return any(later_start <= earlier_end
               for (_, earlier_end), (later_start, _) in zip(ordered, ordered[1:]))


@dataclass(frozen=True)
class WindowMeasurement:
    """Aggregated machine-window statistics for one core model."""

    model: str
    threads: int
    trials: int
    durations: np.ndarray  # flattened per-thread window lengths
    overlap_trials: int
    manifest_trials: int
    manifest_without_overlap: int

    @property
    def mean_duration(self) -> BootstrapInterval:
        """Mean window length with a bootstrap interval."""
        return bootstrap_mean_interval(self.durations, seed=0)

    @property
    def deterministic(self) -> bool:
        """Whether every measured window had the same length (SC's signature)."""
        return bool(np.all(self.durations == self.durations[0]))

    def duration_fraction(self, length: int) -> float:
        """Empirical ``Pr[window length = length]``."""
        return float((self.durations == length).mean())

    def __str__(self) -> str:
        return (
            f"{self.model}: mean window {self.mean_duration} cycles; "
            f"overlaps in {self.overlap_trials}/{self.trials} trials"
        )


@dataclass(frozen=True)
class _WindowShard:
    """Per-shard window aggregate (plain arrays/ints: cheap to pickle)."""

    durations: np.ndarray
    overlap_trials: int
    manifest_trials: int
    manifest_without_overlap: int


def _window_shard(
    source: RandomSource,
    shard_trials: int,
    model_name: str,
    threads: int,
    body_length: int,
    scheduler: Scheduler | None,
    core_options: dict[str, object],
) -> _WindowShard:
    """Measure one shard of window trials (hot loop mirrors the executor's:
    scheduler hoisted out, trial streams pre-spawned in blocks)."""
    if scheduler is None:
        scheduler = GeometricLaunchScheduler()
    durations: list[int] = []
    overlap_trials = 0
    manifest_trials = 0
    manifest_without_overlap = 0
    for batch in iter_batches(shard_trials, TRIAL_SPAWN_BATCH):
        streams = source.spawn(2 * batch)
        for index in range(batch):
            body = sample_body_types(body_length, streams[2 * index])
            programs = [canonical_increment(thread, body) for thread in range(threads)]
            machine = Machine(
                model_name,
                programs,
                scheduler=scheduler,
                log_accesses=True,
                **core_options,
            )
            result = machine.run(streams[2 * index + 1])
            windows = extract_windows(result, threads)
            durations.extend(end - start for start, end in windows)
            overlapped = _windows_overlap(windows)
            manifested = result.location(SHARED_COUNTER) < threads
            overlap_trials += overlapped
            manifest_trials += manifested
            if manifested and not overlapped:
                manifest_without_overlap += 1
    return _WindowShard(
        durations=np.array(durations, dtype=np.int64),
        overlap_trials=overlap_trials,
        manifest_trials=manifest_trials,
        manifest_without_overlap=manifest_without_overlap,
    )


def _window_shard_vectorized(
    source: RandomSource,
    shard_trials: int,
    model_name: str,
    threads: int,
    body_length: int,
    beta: float,
    core_options: dict[str, object],
) -> _WindowShard:
    """Whole-array window measurement for one shard.

    The overlap check sorts each trial's windows by read cycle and tests
    adjacent pairs — equivalent to :func:`_windows_overlap` (for sorted
    intervals any overlapping pair implies an overlapping adjacent pair).
    Lazy kernel import: :mod:`repro.kernels` imports this package during
    its own initialisation.
    """
    from ..kernels.machine import machine_race_batch

    durations: list[np.ndarray] = []
    overlap_trials = 0
    manifest_trials = 0
    manifest_without_overlap = 0
    for batch in iter_batches(shard_trials, TRIAL_SPAWN_BATCH):
        reads, commits, finals = machine_race_batch(
            source.child(), batch, model_name, threads=threads,
            body_length=body_length, beta=beta, **core_options,
        )
        durations.append((commits - reads).ravel())
        order = np.argsort(reads, axis=1, kind="stable")
        starts = np.take_along_axis(reads, order, axis=1)
        ends = np.take_along_axis(commits, order, axis=1)
        overlapped = (starts[:, 1:] <= ends[:, :-1]).any(axis=1)
        manifested = finals < threads
        overlap_trials += int(overlapped.sum())
        manifest_trials += int(manifested.sum())
        manifest_without_overlap += int((manifested & ~overlapped).sum())
    return _WindowShard(
        durations=np.concatenate(durations) if durations
        else np.empty(0, dtype=np.int64),
        overlap_trials=overlap_trials,
        manifest_trials=manifest_trials,
        manifest_without_overlap=manifest_without_overlap,
    )


def measure_critical_windows(
    model_name: str,
    threads: int,
    trials: int,
    seed: int | None = 0,
    body_length: int = 8,
    scheduler: Scheduler | None = None,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    fingerprint: str | None = UNSET,
    cache: object | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    backend: str = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
    **core_options,
) -> WindowMeasurement:
    """Run the canonical race and measure every thread's critical window.

    Also verifies, trial by trial, the §3.2 implication *manifestation ⇒
    window overlap* (counted in ``manifest_without_overlap``, which must
    be zero — asserted in the tests).  ``workers``/``shards`` follow the
    library-wide sharding discipline (:mod:`repro.stats.parallel`): shard
    aggregates concatenate in shard order, so fixed ``(seed, shards)`` is
    bit-reproducible at any worker count (``shards=None`` defaults to the
    fixed :data:`~repro.stats.parallel.DEFAULT_SHARDS` whenever
    parallelism is requested, never the worker count).
    ``retries``/``timeout``/``checkpoint`` configure the fault-tolerance
    layer (:func:`repro.stats.parallel.run_sharded`);
    ``fingerprint``/``cache`` the v2 checkpoint keying (the kernel
    fingerprint distinguishes the backends; labels carry no ``backend=``
    salt) and the content-addressed shard cache (``docs/CACHING.md``);
    ``manifest``/``trace``/``progress`` the observability layer
    (``docs/OBSERVABILITY.md``).  ``backend="vectorized"`` measures the
    same statistics on the whole-array kernel of
    :mod:`repro.kernels.machine` (racy canonical workload, SC/TSO/PSO,
    geometric-launch scheduler only — see ``docs/KERNELS.md``); the
    machine has no fused kernel, so ``backend="fused"`` is rejected
    explicitly.  ``rng_plan``/``transport`` select the shard-stream
    derivation and the shard result channel (see
    :class:`repro.stats.parallel.ShardPlan` and
    :mod:`repro.stats.transport`).  ``config`` (a
    :class:`repro.runconfig.RunConfig`) supplies every execution knob in
    one validated record, the per-knob keywords acting as deprecated
    aliases that override the matching config field when passed
    explicitly; like :func:`~repro.sim.executor.run_canonical_bug` this
    is a scalar-default machine driver, so the config resolves with
    ``allowed_backends=("scalar", "vectorized")``.
    """
    if threads < 2:
        raise ValueError(f"need at least 2 threads, got {threads}")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, fingerprint=fingerprint,
                             cache=cache, manifest=manifest, trace=trace,
                             progress=progress, backend=backend,
                             rng_plan=rng_plan, transport=transport,
                             ).resolve(default_backend="scalar",
                                       allowed_backends=("scalar", "vectorized"))
    if cfg.backend == "vectorized":
        beta = _machine_backend_beta(model_name, scheduler, False, False,
                                     core_options)
        kernel = partial(
            _window_shard_vectorized,
            model_name=model_name,
            threads=threads,
            body_length=body_length,
            beta=beta,
            core_options=core_options,
        )
    else:
        kernel = partial(
            _window_shard,
            model_name=model_name,
            threads=threads,
            body_length=body_length,
            scheduler=scheduler,
            core_options=core_options,
        )
    plan = ShardPlan(trials, resolve_shards(cfg.workers, cfg.shards), seed,
                     cfg.rng_plan)
    label = f"windows:{model_name}:n={threads}:body={body_length}"
    observer = cfg.observer(label)

    def build(parts: list[_WindowShard]) -> WindowMeasurement:
        return WindowMeasurement(
            model=model_name,
            threads=threads,
            trials=trials,
            durations=np.concatenate([part.durations for part in parts]),
            overlap_trials=sum(part.overlap_trials for part in parts),
            manifest_trials=sum(part.manifest_trials for part in parts),
            manifest_without_overlap=sum(part.manifest_without_overlap
                                         for part in parts),
        )

    layout = WindowLayout(threads)
    if observer is None:
        return build(run_sharded(kernel, plan, cfg.workers,
                                 checkpoint_label=label, layout=layout,
                                 **cfg.engine_options()))
    with observer.span("run"):
        with observer.span("shards"):
            parts = run_sharded(kernel, plan, cfg.workers,
                                checkpoint_label=label, observer=observer,
                                layout=layout, **cfg.engine_options())
        with observer.span("merge"):
            result = build(parts)
    observer.finish(result)
    return result
