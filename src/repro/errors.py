"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors (``TypeError``
from misuse of the Python API, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelDefinitionError",
    "ProgramError",
    "DistributionError",
    "TruncationError",
    "SimulationError",
    "LitmusError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelDefinitionError(ReproError):
    """An invalid memory-model definition was supplied.

    Raised, for example, when a reorder matrix names an unknown
    instruction-type pair, or when a settle probability lies outside
    ``[0, 1]``.
    """


class ProgramError(ReproError):
    """A program violates the structural requirements of the model.

    The program model of the paper (Appendix A.1) requires a unique
    critical load followed by a unique critical store, accessing the same
    location, with every other instruction accessing a distinct location.
    """


class DistributionError(ReproError):
    """A probability distribution is malformed.

    Raised when a PMF has negative mass, does not (approximately) sum to
    one, or is queried outside its support in a context where that is not
    meaningful.
    """


class TruncationError(ReproError):
    """An adaptively truncated infinite sum failed to meet its tolerance.

    The analytic modules evaluate infinite series by truncation with
    explicit geometric tail bounds.  If a requested tolerance cannot be
    achieved within the configured maximum number of terms, this error is
    raised rather than silently returning an inaccurate value.
    """


class SimulationError(ReproError):
    """The multiprocessor simulator reached an inconsistent state.

    This always indicates a bug in a core model or a malformed machine
    program (e.g. a load from a register that was never written), never
    an expected runtime condition.
    """


class LitmusError(ReproError):
    """A litmus test definition is malformed or cannot be enumerated."""
